#include "clocktree/embed.h"

#include <cassert>

namespace gcr::ct {

RoutedTree embed(const Topology& topo, std::span<const Sink> sinks,
                 const std::vector<bool>& edge_gated,
                 const tech::TechParams& tech, const EmbedOptions& opts) {
  assert(topo.valid());
  assert(static_cast<int>(sinks.size()) == topo.num_leaves());
  assert(static_cast<int>(edge_gated.size()) == topo.num_nodes());

  RoutedTree out;
  out.num_leaves = topo.num_leaves();
  out.root = topo.root();
  out.nodes.resize(static_cast<std::size_t>(topo.num_nodes()));

  // ---- bottom-up: merging segments, edge lengths, caps, delays ----------
  std::vector<SubtreeTap> taps(static_cast<std::size_t>(topo.num_nodes()));
  for (int id = 0; id < topo.num_nodes(); ++id) {
    const TreeNode& tn = topo.node(id);
    RoutedNode& rn = out.nodes[static_cast<std::size_t>(id)];
    rn.left = tn.left;
    rn.right = tn.right;
    rn.parent = tn.parent;
    rn.gated = edge_gated[static_cast<std::size_t>(id)] && tn.parent >= 0;

    SubtreeTap& tap = taps[static_cast<std::size_t>(id)];
    if (tn.is_leaf()) {
      const Sink& s = sinks[static_cast<std::size_t>(id)];
      tap.ms = geom::TiltedRect::from_point(s.loc);
      tap.delay = 0.0;
      tap.cap = s.cap;
    } else {
      const auto& ta = taps[static_cast<std::size_t>(tn.left)];
      const auto& tb = taps[static_cast<std::size_t>(tn.right)];
      RoutedNode& na = out.nodes[static_cast<std::size_t>(tn.left)];
      RoutedNode& nb = out.nodes[static_cast<std::size_t>(tn.right)];

      MergeResult m = zero_skew_merge(ta, na.gated, tb, nb.gated, tech);
      double best_sa = 1.0, best_sb = 1.0;
      if (opts.sizing == GateSizing::MinWirelength &&
          (na.gated || nb.gated) && !opts.gate_sizes.empty()) {
        // Enumerate child-gate sizes; keep the combination with the least
        // total wire (snaking is what sizing buys back), tie-broken by the
        // smallest total gate area.
        double best_wire = m.len_a + m.len_b;
        double best_area = (na.gated ? 1.0 : 0.0) + (nb.gated ? 1.0 : 0.0);
        const std::vector<double> unit{1.0};
        const auto& sizes_a = na.gated ? opts.gate_sizes : unit;
        const auto& sizes_b = nb.gated ? opts.gate_sizes : unit;
        for (const double sa : sizes_a) {
          for (const double sb : sizes_b) {
            const MergeResult cand =
                zero_skew_merge(ta, na.gated, tb, nb.gated, tech, sa, sb);
            const double wire = cand.len_a + cand.len_b;
            const double area =
                (na.gated ? sa : 0.0) + (nb.gated ? sb : 0.0);
            if (wire < best_wire - 1e-9 ||
                (wire < best_wire + 1e-9 && area < best_area)) {
              best_wire = wire;
              best_area = area;
              best_sa = sa;
              best_sb = sb;
              m = cand;
            }
          }
        }
      }
      na.edge_len = m.len_a;
      nb.edge_len = m.len_b;
      na.gate_size = na.gated ? best_sa : 1.0;
      nb.gate_size = nb.gated ? best_sb : 1.0;
      tap.ms = m.ms;
      tap.delay = m.delay;
      tap.cap = m.cap;
    }
    rn.ms = tap.ms;
    rn.delay = tap.delay;
    rn.down_cap = tap.cap;
  }

  // ---- top-down: place every node on its merging segment ----------------
  const std::vector<int> post = topo.postorder();
  // Walk parents before children: reverse postorder.
  for (auto it = post.rbegin(); it != post.rend(); ++it) {
    const int id = *it;
    RoutedNode& rn = out.nodes[static_cast<std::size_t>(id)];
    if (id == out.root) {
      rn.loc = rn.ms.nearest_point_to(opts.root_hint);
      rn.edge_len = 0.0;
      rn.gated = false;
      continue;
    }
    const geom::Point parent_loc =
        out.nodes[static_cast<std::size_t>(rn.parent)].loc;
    rn.loc = rn.ms.nearest_point_to(parent_loc);
    // The physical wire is edge_len long even when the placed endpoints are
    // closer (snaking); the geometric distance can never exceed it.
    assert(geom::manhattan_dist(rn.loc, parent_loc) <= rn.edge_len + 1e-6);
  }

  return out;
}

}  // namespace gcr::ct

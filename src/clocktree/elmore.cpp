#include "clocktree/elmore.h"

#include <cassert>
#include <limits>

namespace gcr::ct {

namespace {

double factor_of(const std::vector<double>& f, int id) {
  return f.empty() ? 1.0 : f[static_cast<std::size_t>(id)];
}

}  // namespace

DelayReport elmore_delays(const RoutedTree& tree, const tech::TechParams& tech,
                          const ElmoreFactors* factors) {
  const int n = tree.num_nodes();
  static const ElmoreFactors kNominal;
  const ElmoreFactors& f = factors ? *factors : kNominal;
  assert(f.wire_res.empty() || static_cast<int>(f.wire_res.size()) == n);
  assert(f.wire_cap.empty() || static_cast<int>(f.wire_cap.size()) == n);
  assert(f.gate_res.empty() || static_cast<int>(f.gate_res.size()) == n);
  assert(f.gate_delay.empty() || static_cast<int>(f.gate_delay.size()) == n);

  // Per-node parasitics of the parent edge, with variation applied.
  const auto edge_res = [&](int id) {
    return tech.wire_res(tree.node(id).edge_len) * factor_of(f.wire_res, id);
  };
  const auto edge_cap = [&](int id) {
    return tech.wire_cap(tree.node(id).edge_len) * factor_of(f.wire_cap, id);
  };

  // Downstream capacitance at each node (ids ascend bottom-up).
  std::vector<double> down(static_cast<std::size_t>(n), 0.0);
  for (int id = 0; id < n; ++id) {
    const RoutedNode& node = tree.node(id);
    if (node.is_leaf()) {
      down[static_cast<std::size_t>(id)] = node.down_cap;  // sink load
      continue;
    }
    double cap = 0.0;
    for (const int child : {node.left, node.right}) {
      const RoutedNode& c = tree.node(child);
      cap += c.gated
                 ? c.gate_size * tech.gate_input_cap
                 : edge_cap(child) + down[static_cast<std::size_t>(child)];
    }
    down[static_cast<std::size_t>(id)] = cap;
  }

  // Delay accumulates root -> leaf. A parent is created by the merge of its
  // children, so parent ids are strictly larger than child ids; descending
  // id order visits every parent before its children.
  std::vector<double> delay(static_cast<std::size_t>(n), 0.0);
  DelayReport rep;
  rep.sink_delay.assign(static_cast<std::size_t>(tree.num_leaves), 0.0);
  rep.max_delay = -std::numeric_limits<double>::infinity();
  rep.min_delay = std::numeric_limits<double>::infinity();

  for (int id = n - 1; id >= 0; --id) {
    const RoutedNode& node = tree.node(id);
    double d = 0.0;
    if (node.parent >= 0) {
      d = delay[static_cast<std::size_t>(node.parent)];
      const double load = edge_cap(id) + down[static_cast<std::size_t>(id)];
      if (node.gated) {
        d += tech.gate_delay * factor_of(f.gate_delay, id) +
             (tech.gate_output_res / node.gate_size) *
                 factor_of(f.gate_res, id) * load;
      }
      d += edge_res(id) *
           (0.5 * edge_cap(id) + down[static_cast<std::size_t>(id)]);
    }
    delay[static_cast<std::size_t>(id)] = d;
    if (node.is_leaf()) {
      rep.sink_delay[static_cast<std::size_t>(id)] = d;
      rep.max_delay = std::max(rep.max_delay, d);
      rep.min_delay = std::min(rep.min_delay, d);
    }
  }
  if (tree.num_leaves == 0) rep.max_delay = rep.min_delay = 0.0;
  return rep;
}

}  // namespace gcr::ct

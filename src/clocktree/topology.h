#pragma once

#include <vector>

/// \file topology.h
/// Abstract (un-embedded) clock tree topology: a full binary tree over the
/// sinks. Node ids 0..num_leaves-1 are the sinks; internal nodes are
/// appended as merges happen, so for N sinks the tree has 2N-1 nodes and the
/// root is created last.

namespace gcr::ct {

struct TreeNode {
  int left{-1};
  int right{-1};
  int parent{-1};

  [[nodiscard]] bool is_leaf() const { return left < 0 && right < 0; }
};

class Topology {
 public:
  explicit Topology(int num_leaves)
      : nodes_(static_cast<std::size_t>(num_leaves)), num_leaves_(num_leaves) {
    if (num_leaves == 1) root_ = 0;
  }

  [[nodiscard]] int num_leaves() const { return num_leaves_; }
  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] int root() const { return root_; }
  [[nodiscard]] const TreeNode& node(int id) const { return nodes_.at(id); }
  [[nodiscard]] bool is_leaf(int id) const { return nodes_.at(id).is_leaf(); }

  /// Merge two parentless subtrees; returns the new internal node id.
  /// The caller is responsible for merging every subtree exactly once so a
  /// single root remains; the final merge sets root().
  int merge(int a, int b) {
    const int id = num_nodes();
    nodes_.push_back({a, b, -1});
    nodes_.at(a).parent = id;
    nodes_.at(b).parent = id;
    root_ = id;  // the last merge wins; valid() checks it covers everything
    return id;
  }

  /// Node ids in a postorder walk from the root (children before parents).
  /// Because internal ids are assigned in merge order, ascending id order is
  /// already a valid bottom-up order; this returns a root-derived postorder
  /// for callers that need parent-before-child reversals.
  [[nodiscard]] std::vector<int> postorder() const;

  /// Structural sanity: every node reachable from the root exactly once,
  /// internal nodes have exactly two children, parents are consistent.
  [[nodiscard]] bool valid() const;

 private:
  std::vector<TreeNode> nodes_;
  int num_leaves_;
  int root_{-1};
};

}  // namespace gcr::ct

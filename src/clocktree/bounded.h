#pragma once

#include <span>
#include <vector>

#include "clocktree/routed_tree.h"
#include "clocktree/sink.h"
#include "clocktree/topology.h"
#include "clocktree/zskew.h"
#include "tech/params.h"

/// \file bounded.h
/// Bounded-skew extension of the zero-skew engine. The paper routes under
/// an exact zero-skew constraint; real flows usually accept a skew budget
/// B, which buys back the *snake wire* exact balancing demands whenever
/// sibling branches are electrically asymmetric (e.g. after gate
/// reduction).
///
/// Each subtree carries a sink-delay interval [dmin, dmax]; a wire/gate
/// stage shifts both ends equally, so interval width only grows at merges
/// (it becomes the width of the union). The merge chooses the split of the
/// plain (non-snaked) distance minimizing the merged width; if that width
/// fits within B the merge costs no detour wire at all, otherwise the wire
/// is elongated just enough -- down to exact mid-alignment, whose width
/// max(w_a, w_b) <= B holds inductively, so a bound that admits the sinks
/// is always feasible.
///
/// This is the "snake-elimination" fragment of BST-DME [Cong-Koh]: merging
/// segments stay Manhattan arcs (full BST merging regions are future work),
/// so the savings appear exactly where exact zero skew pays detours.

namespace gcr::ct {

/// A subtree with a sink-delay interval.
struct SkewTap {
  geom::TiltedRect ms;
  double dmin{0.0};
  double dmax{0.0};
  double cap{0.0};

  [[nodiscard]] double width() const { return dmax - dmin; }
};

struct BoundedMergeResult {
  geom::TiltedRect ms;
  double len_a{0.0};
  double len_b{0.0};
  double dmin{0.0};
  double dmax{0.0};
  double cap{0.0};
};

/// Delay interval through a branch (gate + wire of length `len`).
[[nodiscard]] std::pair<double, double> branch_interval(
    const SkewTap& sub, bool gated, double len, const tech::TechParams& t,
    double gate_size = 1.0);

/// Merge under skew bound `bound` (>= max(width_a, width_b) required; the
/// zero-skew engine is the bound == 0 special case up to floating point).
[[nodiscard]] BoundedMergeResult bounded_skew_merge(const SkewTap& a,
                                                    bool gate_a,
                                                    const SkewTap& b,
                                                    bool gate_b,
                                                    const tech::TechParams& t,
                                                    double bound);

struct BoundedEmbedOptions {
  geom::Point root_hint{0.0, 0.0};
  double skew_bound{0.0};  ///< global sink-skew budget [ohm*pF]
};

/// DME embedding under a skew bound; node.delay stores the subtree's dmax.
[[nodiscard]] RoutedTree embed_bounded(const Topology& topo,
                                       std::span<const Sink> sinks,
                                       const std::vector<bool>& edge_gated,
                                       const tech::TechParams& tech,
                                       const BoundedEmbedOptions& opts);

}  // namespace gcr::ct

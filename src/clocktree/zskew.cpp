#include "clocktree/zskew.h"

#include <atomic>
#include <cassert>
#include <cmath>

#include "guard/status.h"
#include "obs/metrics.h"

namespace gcr::ct {

namespace {

std::atomic<std::uint64_t> g_detached_merges{0};

void note_detached_merge() {
  g_detached_merges.fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics_enabled()) [[unlikely]] {
    static obs::Counter& c =
        obs::Registry::global().counter("zskew.detached_merges");
    c.inc();
  }
}

}  // namespace

std::uint64_t detached_merge_count() {
  return g_detached_merges.load(std::memory_order_relaxed);
}

BranchCoeffs branch_coeffs(const SubtreeTap& sub, bool gated,
                           const tech::TechParams& t, double gate_size) {
  if (gated) {
    assert(gate_size > 0.0);
    const double rg = t.gate_output_res / gate_size;
    return {sub.delay + t.gate_delay + rg * sub.cap,
            rg * t.unit_cap + t.unit_res * sub.cap};
  }
  return {sub.delay, t.unit_res * sub.cap};
}

double branch_delay(const SubtreeTap& sub, bool gated, double len,
                    const tech::TechParams& t, double gate_size) {
  const BranchCoeffs c = branch_coeffs(sub, gated, t, gate_size);
  return c.a + c.b * len + 0.5 * t.unit_res * t.unit_cap * len * len;
}

double branch_cap(const SubtreeTap& sub, bool gated, double len,
                  const tech::TechParams& t, double gate_size) {
  return gated ? gate_size * t.gate_input_cap : t.wire_cap(len) + sub.cap;
}

MergeResult zero_skew_merge(const SubtreeTap& a, bool gate_a,
                            const SubtreeTap& b, bool gate_b,
                            const tech::TechParams& t, double size_a,
                            double size_b) {
  const double rc = t.unit_res * t.unit_cap;
  const double dist = a.ms.distance_to(b.ms);
  const BranchCoeffs ca = branch_coeffs(a, gate_a, t, size_a);
  const BranchCoeffs cb = branch_coeffs(b, gate_b, t, size_b);

  MergeResult r;
  // The edge lengths come from the shared balance formula -- the same one
  // the greedy's pair pricing evaluates -- so a priced pair and the
  // committed merge always agree bit-for-bit. Only the merged-segment
  // geometry is computed here.
  const BalanceSplit s = balance_lengths(ca, cb, dist, rc);
  r.len_a = s.len_a;
  r.len_b = s.len_b;
  if (s.balanced) {
    const auto isect =
        a.ms.inflated(r.len_a).intersect(b.ms.inflated(r.len_b), 1e-6);
    if (isect.has_value()) {
      r.ms = *isect;
    } else [[unlikely]] {
      // Numeric corner: the inflated segments miss by more than the
      // tolerance. Fall back to the nearest region (slightly pessimistic
      // wire) and count the event -- route_guarded() reports any increase
      // as GCR_W_DETACHED_MERGE instead of the old debug-only assert.
      note_detached_merge();
      r.ms = a.ms.nearest_region_to(b.ms);
    }
  } else if (r.len_a == 0.0) {
    // Subtree a was too slow: merge point sits on ms(a), wire to b snaked.
    assert(r.len_b >= dist - 1e-6);
    r.ms = a.ms.nearest_region_to(b.ms);
  } else {
    // Subtree b was too slow: symmetric case.
    assert(r.len_a >= dist - 1e-6);
    r.ms = b.ms.nearest_region_to(a.ms);
  }

  r.delay = branch_delay(a, gate_a, r.len_a, t, size_a);
  r.cap = branch_cap(a, gate_a, r.len_a, t, size_a) +
          branch_cap(b, gate_b, r.len_b, t, size_b);
  // A NaN or Inf here (degenerate tech parameters, overflowed snake
  // lengths) would silently poison every merge above this one; fail as a
  // structured internal error at the first bad value instead.
  if (!(std::isfinite(r.delay) && std::isfinite(r.cap))) [[unlikely]]
    throw guard::GuardError(guard::make_error(
        guard::Code::Internal, "non-finite delay/cap in zero-skew merge"));
  return r;
}

}  // namespace gcr::ct

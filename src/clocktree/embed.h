#pragma once

#include <span>
#include <vector>


#include "clocktree/routed_tree.h"
#include "clocktree/sink.h"
#include "clocktree/topology.h"
#include "clocktree/zskew.h"
#include "tech/params.h"

/// \file embed.h
/// Deferred-Merge Embedding over a fixed topology and gate assignment:
///   1. bottom-up: compute merging segments, edge lengths, subtree caps and
///      zero-skew delays for every node (exact zero skew at each merge);
///   2. top-down: place the root on its merging segment nearest `root_hint`
///      (typically the chip center, where the clock source enters) and every
///      other node on its segment nearest its placed parent.
///
/// Because internal node ids ascend in merge order, ascending id order is a
/// valid bottom-up schedule.

namespace gcr::ct {

/// How gate sizes are chosen during the bottom-up phase.
enum class GateSizing {
  Unit,           ///< every gate is a unit AND (the paper's base flow)
  MinWirelength,  ///< per merge, pick child-gate sizes from `gate_sizes`
                  ///< minimizing total edge length (kills snake wire that
                  ///< would otherwise compensate gate-delay imbalance)
};

struct EmbedOptions {
  geom::Point root_hint{0.0, 0.0};  ///< pull the root towards this point
  GateSizing sizing{GateSizing::Unit};
  std::vector<double> gate_sizes{0.5, 1.0, 2.0, 4.0};  ///< candidate sizes
};

/// `edge_gated[id]` == gate at the top of the edge from id's parent to id;
/// the root entry is ignored. Requires topo.valid() and one sink per leaf.
[[nodiscard]] RoutedTree embed(const Topology& topo,
                               std::span<const Sink> sinks,
                               const std::vector<bool>& edge_gated,
                               const tech::TechParams& tech,
                               const EmbedOptions& opts = {});

}  // namespace gcr::ct

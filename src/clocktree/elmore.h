#pragma once

#include <vector>

#include "clocktree/routed_tree.h"
#include "tech/params.h"

/// \file elmore.h
/// Independent Elmore delay evaluation of an embedded tree. This re-derives
/// downstream capacitances and source-to-sink delays from the routed tree
/// alone (stored wirelengths + gate flags + sink caps), without reusing any
/// of the merge-phase arithmetic -- it is the referee that certifies the
/// zero-skew property of the construction.

namespace gcr::ct {

struct DelayReport {
  std::vector<double> sink_delay;  ///< per sink id [ohm*pF]
  double max_delay{0.0};
  double min_delay{0.0};

  [[nodiscard]] double skew() const { return max_delay - min_delay; }
};

/// Per-node multiplicative deviations from nominal parasitics, used by the
/// process-variation analysis (eval/variation.h). Empty vectors mean
/// nominal (factor 1) everywhere; otherwise one factor per node, applying
/// to the node's parent edge / gate.
struct ElmoreFactors {
  std::vector<double> wire_res;
  std::vector<double> wire_cap;
  std::vector<double> gate_res;
  std::vector<double> gate_delay;
};

[[nodiscard]] DelayReport elmore_delays(const RoutedTree& tree,
                                        const tech::TechParams& tech,
                                        const ElmoreFactors* factors = nullptr);

}  // namespace gcr::ct

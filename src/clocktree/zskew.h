#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>

#include "geom/tilted_rect.h"
#include "tech/params.h"

/// \file zskew.h
/// Exact zero-skew merging under the Elmore delay model (Tsay'91), extended
/// with optional masking gates at the top of each new edge.
///
/// Electrical model of one branch. Let a subtree have root delay t (the
/// equal Elmore delay from its root to every sink) and downstream
/// capacitance C at its root. A new edge of length L connects a parent
/// Steiner point to that root; a masking AND gate may sit at the *top* of
/// the edge (immediately after the parent node, paper section 1 / Fig. 1).
/// The gate may be *sized* (paper section 1: "they also serve as buffers
/// and can be sized to adjust the phase delay"): a gate of size s presents
/// input cap s*C_g and drives with resistance R_g/s.
///
///   gated:    delay(L) = D_g + (R_g/s) (c L + C) + r L (c L / 2 + C) + t
///             cap seen by the parent = s*C_g (the gate isolates the subtree)
///   ungated:  delay(L) = r L (c L / 2 + C) + t
///             cap seen by the parent = c L + C
///
/// Both are quadratics  A + B L + (rc/2) L^2  with
///   gated:   A = t + D_g + (R_g/s) C,  B = (R_g/s) c + r C
///   ungated: A = t,                    B = r C.
///
/// The merge point splits the distance between the two merging segments so
/// the two branch delays are equal; when one subtree is too slow even with
/// all the wire on the other side, the short side gets length 0 and the
/// long side's wire is elongated (snaked) by solving the quadratic.

namespace gcr::ct {

/// One subtree as seen from above, ready to be merged.
struct SubtreeTap {
  geom::TiltedRect ms;  ///< merging segment of the subtree root
  double delay{0.0};    ///< zero-skew root-to-sink delay [ohm*pF]
  double cap{0.0};      ///< downstream cap at the subtree root [pF]
};

/// Result of merging two subtrees.
struct MergeResult {
  geom::TiltedRect ms;   ///< merging segment of the new node
  double len_a{0.0};     ///< wirelength of the edge to subtree a (with snaking)
  double len_b{0.0};     ///< wirelength of the edge to subtree b
  double delay{0.0};     ///< zero-skew delay of the merged node
  double cap{0.0};       ///< cap at the merged node looking down
};

/// Quadratic coefficients (A, B) of a branch; see file comment.
struct BranchCoeffs {
  double a{0.0};
  double b{0.0};
};

[[nodiscard]] BranchCoeffs branch_coeffs(const SubtreeTap& sub, bool gated,
                                         const tech::TechParams& t,
                                         double gate_size = 1.0);

/// Snaking length: the positive root of (rc/2) x^2 + b x - d = 0 with
/// d >= 0 -- the wire length whose added branch delay equals `d` against
/// linear coefficient `b`. Monotone increasing in d, decreasing in b.
[[nodiscard]] inline double snake_length(double rc, double b, double d) {
  assert(d >= 0.0);
  if (d == 0.0) return 0.0;
  if (rc <= 0.0) {
    // No distributed wire parasitics: linear equation.
    return b > 0.0 ? d / b : 0.0;
  }
  return (-b + std::sqrt(b * b + 2.0 * rc * d)) / rc;
}

/// The two edge lengths a zero-skew merge buys, split by delay balance.
struct BalanceSplit {
  double len_a{0.0};
  double len_b{0.0};
  bool balanced{true};  ///< balance point landed in [0, dist] (no snaking)
};

/// The exact edge lengths zero_skew_merge assigns for branches with
/// coefficients `x` (side a) and `y` (side b) whose merging segments are
/// `dist` apart: the balance point splits `dist` when both lengths land
/// in [0, dist], otherwise the slow side gets 0 and the fast side's wire
/// is snaked. This is the *whole* cost-relevant output of a merge -- the
/// expensive merged-segment geometry is only needed when the merge is
/// actually committed -- so pair pricing calls this directly. It is the
/// single source of truth: zero_skew_merge uses the same function, which
/// is what keeps cheaply-priced and committed merges bit-identical.
/// The raw (unclamped) balance point: the length of side a's edge that
/// equalizes the two branch delays across `dist` of wire, before the
/// [0, dist] range check. Negative means side a is too slow (its edge
/// collapses to 0 and side b snakes); above `dist` is the symmetric case.
/// For fixed coefficients the clamped per-side lengths are nondecreasing
/// in `dist`, and at fixed `dist` the point is monotone in each
/// coefficient (increasing in y.a - x.a; a Mobius function of each b), so
/// envelope bounds on the coefficients turn into bounds on the split by
/// evaluating the corners -- which is how the partner index prices a
/// subtree's cheapest possible split.
[[nodiscard]] inline double balance_point(const BranchCoeffs& x,
                                          const BranchCoeffs& y, double dist,
                                          double rc) {
  const double denom = x.b + y.b + rc * dist;
  if (denom <= 0.0)
    return 0.5 * dist;  // both branches electrically weightless: split evenly
  return (y.a - x.a + dist * (y.b + 0.5 * rc * dist)) / denom;
}

[[nodiscard]] inline BalanceSplit balance_lengths(const BranchCoeffs& x,
                                                  const BranchCoeffs& y,
                                                  double dist, double rc) {
  // Balance point: L = length of the edge to a, dist - L to b.
  const double l = balance_point(x, y, dist, rc);
  if (l >= 0.0 && l <= dist) return {l, dist - l, true};
  if (l < 0.0) {
    // Subtree a is too slow: merge point sits on ms(a); snake the wire to b.
    return {0.0, snake_length(rc, y.b, x.a - y.a), false};
  }
  // Subtree b is too slow: symmetric case.
  return {snake_length(rc, x.b, y.a - x.a), 0.0, false};
}

/// The total wirelength (len_a + len_b) zero_skew_merge buys for branches
/// with coefficients `x` and `y` whose merging segments are `dist` apart.
/// The balance point either splits `dist` exactly (total = dist, when the
/// slower subtree can be caught up within the span) or slides off the
/// slower side's end and the faster side's wire snakes: total =
/// snake_length of the delay gap, which then exceeds dist. The expression
/// is nondecreasing in `dist` and in |x.a - y.a| and nonincreasing in the
/// faster side's `b`, so feeding lower bounds on the former and an upper
/// bound on the latter yields a valid lower bound on the wire any
/// zero-skew merge of the pair must buy.
[[nodiscard]] inline double merge_wire_total(const BranchCoeffs& x,
                                             const BranchCoeffs& y,
                                             double dist, double rc) {
  const double gap = y.a - x.a;
  const double bf = gap >= 0.0 ? x.b : y.b;  // the faster (smaller-A) side
  const double ad = std::abs(gap);
  // In-range balance point iff the faster side can absorb the whole delay
  // gap over `dist` of wire; the cheap test dodges snake_length's sqrt.
  if (ad <= dist * (bf + 0.5 * rc * dist)) return dist;
  return snake_length(rc, bf, ad);
}

/// Delay through a branch of edge length `len`.
[[nodiscard]] double branch_delay(const SubtreeTap& sub, bool gated,
                                  double len, const tech::TechParams& t,
                                  double gate_size = 1.0);

/// Capacitance the parent sees through a branch of edge length `len`.
[[nodiscard]] double branch_cap(const SubtreeTap& sub, bool gated, double len,
                                const tech::TechParams& t,
                                double gate_size = 1.0);

/// Merge two subtrees with optional gates (of the given sizes) at the tops
/// of the new edges.
[[nodiscard]] MergeResult zero_skew_merge(const SubtreeTap& a, bool gate_a,
                                          const SubtreeTap& b, bool gate_b,
                                          const tech::TechParams& t,
                                          double size_a = 1.0,
                                          double size_b = 1.0);

/// Process-wide count of detached-merge fallbacks: balanced-split merges
/// whose inflated merging segments failed to intersect (a numeric corner
/// of the tilted-rect arithmetic) and fell back to the nearest region.
/// Used to be a debug-only assert; now it is a counted, reported event --
/// route_guarded() surfaces any increase as a GCR_W_DETACHED_MERGE
/// warning. Monotone, relaxed, never reset.
[[nodiscard]] std::uint64_t detached_merge_count();

}  // namespace gcr::ct

#pragma once

#include <cstdint>

#include "geom/tilted_rect.h"
#include "tech/params.h"

/// \file zskew.h
/// Exact zero-skew merging under the Elmore delay model (Tsay'91), extended
/// with optional masking gates at the top of each new edge.
///
/// Electrical model of one branch. Let a subtree have root delay t (the
/// equal Elmore delay from its root to every sink) and downstream
/// capacitance C at its root. A new edge of length L connects a parent
/// Steiner point to that root; a masking AND gate may sit at the *top* of
/// the edge (immediately after the parent node, paper section 1 / Fig. 1).
/// The gate may be *sized* (paper section 1: "they also serve as buffers
/// and can be sized to adjust the phase delay"): a gate of size s presents
/// input cap s*C_g and drives with resistance R_g/s.
///
///   gated:    delay(L) = D_g + (R_g/s) (c L + C) + r L (c L / 2 + C) + t
///             cap seen by the parent = s*C_g (the gate isolates the subtree)
///   ungated:  delay(L) = r L (c L / 2 + C) + t
///             cap seen by the parent = c L + C
///
/// Both are quadratics  A + B L + (rc/2) L^2  with
///   gated:   A = t + D_g + (R_g/s) C,  B = (R_g/s) c + r C
///   ungated: A = t,                    B = r C.
///
/// The merge point splits the distance between the two merging segments so
/// the two branch delays are equal; when one subtree is too slow even with
/// all the wire on the other side, the short side gets length 0 and the
/// long side's wire is elongated (snaked) by solving the quadratic.

namespace gcr::ct {

/// One subtree as seen from above, ready to be merged.
struct SubtreeTap {
  geom::TiltedRect ms;  ///< merging segment of the subtree root
  double delay{0.0};    ///< zero-skew root-to-sink delay [ohm*pF]
  double cap{0.0};      ///< downstream cap at the subtree root [pF]
};

/// Result of merging two subtrees.
struct MergeResult {
  geom::TiltedRect ms;   ///< merging segment of the new node
  double len_a{0.0};     ///< wirelength of the edge to subtree a (with snaking)
  double len_b{0.0};     ///< wirelength of the edge to subtree b
  double delay{0.0};     ///< zero-skew delay of the merged node
  double cap{0.0};       ///< cap at the merged node looking down
};

/// Quadratic coefficients (A, B) of a branch; see file comment.
struct BranchCoeffs {
  double a{0.0};
  double b{0.0};
};

[[nodiscard]] BranchCoeffs branch_coeffs(const SubtreeTap& sub, bool gated,
                                         const tech::TechParams& t,
                                         double gate_size = 1.0);

/// Delay through a branch of edge length `len`.
[[nodiscard]] double branch_delay(const SubtreeTap& sub, bool gated,
                                  double len, const tech::TechParams& t,
                                  double gate_size = 1.0);

/// Capacitance the parent sees through a branch of edge length `len`.
[[nodiscard]] double branch_cap(const SubtreeTap& sub, bool gated, double len,
                                const tech::TechParams& t,
                                double gate_size = 1.0);

/// Merge two subtrees with optional gates (of the given sizes) at the tops
/// of the new edges.
[[nodiscard]] MergeResult zero_skew_merge(const SubtreeTap& a, bool gate_a,
                                          const SubtreeTap& b, bool gate_b,
                                          const tech::TechParams& t,
                                          double size_a = 1.0,
                                          double size_b = 1.0);

/// Process-wide count of detached-merge fallbacks: balanced-split merges
/// whose inflated merging segments failed to intersect (a numeric corner
/// of the tilted-rect arithmetic) and fell back to the nearest region.
/// Used to be a debug-only assert; now it is a counted, reported event --
/// route_guarded() surfaces any increase as a GCR_W_DETACHED_MERGE
/// warning. Monotone, relaxed, never reset.
[[nodiscard]] std::uint64_t detached_merge_count();

}  // namespace gcr::ct

#include "clocktree/bounded.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gcr::ct {

namespace {

/// Stage delay of a gate (optional) plus a wire of length `len` driving
/// downstream cap `cap`.
double stage_delay(bool gated, double len, double cap,
                   const tech::TechParams& t, double gate_size) {
  double d = t.wire_res(len) * (0.5 * t.wire_cap(len) + cap);
  if (gated) {
    d += t.gate_delay +
         (t.gate_output_res / gate_size) * (t.wire_cap(len) + cap);
  }
  return d;
}

struct Union {
  double lo;
  double hi;
  [[nodiscard]] double width() const { return hi - lo; }
};

Union merged_interval(const SkewTap& a, bool ga, const SkewTap& b, bool gb,
                      double la, double lb, const tech::TechParams& t) {
  const double da = stage_delay(ga, la, a.cap, t, 1.0);
  const double db = stage_delay(gb, lb, b.cap, t, 1.0);
  return {std::min(a.dmin + da, b.dmin + db),
          std::max(a.dmax + da, b.dmax + db)};
}

}  // namespace

std::pair<double, double> branch_interval(const SkewTap& sub, bool gated,
                                          double len,
                                          const tech::TechParams& t,
                                          double gate_size) {
  const double d = stage_delay(gated, len, sub.cap, t, gate_size);
  return {sub.dmin + d, sub.dmax + d};
}

BoundedMergeResult bounded_skew_merge(const SkewTap& a, bool gate_a,
                                      const SkewTap& b, bool gate_b,
                                      const tech::TechParams& t,
                                      double bound) {
  assert(bound >= 0.0);
  const double dist = a.ms.distance_to(b.ms);

  // 1. Search the plain split x in [0, dist] minimizing the merged width
  //    (piecewise-quadratic; dense sampling + local refinement is robust).
  const auto width_at = [&](double x) {
    return merged_interval(a, gate_a, b, gate_b, x, dist - x, t).width();
  };
  double best_x = 0.0;
  double best_w = width_at(0.0);
  constexpr int kSamples = 48;
  for (int i = 1; i <= kSamples; ++i) {
    const double x = dist * i / kSamples;
    const double w = width_at(x);
    if (w < best_w) {
      best_w = w;
      best_x = x;
    }
  }
  // Ternary refinement around the best sample.
  {
    double lo = std::max(0.0, best_x - dist / kSamples);
    double hi = std::min(dist, best_x + dist / kSamples);
    for (int it = 0; it < 60 && hi - lo > 1e-9 * std::max(1.0, dist); ++it) {
      const double m1 = lo + (hi - lo) / 3.0;
      const double m2 = hi - (hi - lo) / 3.0;
      if (width_at(m1) <= width_at(m2)) hi = m2; else lo = m1;
    }
    const double x = 0.5 * (lo + hi);
    if (width_at(x) < best_w) {
      best_w = width_at(x);
      best_x = x;
    }
  }

  BoundedMergeResult r;
  if (best_w <= bound + 1e-12) {
    // No detour needed: the skew budget absorbs the imbalance.
    r.len_a = best_x;
    r.len_b = dist - best_x;
    const auto isect =
        a.ms.inflated(r.len_a).intersect(b.ms.inflated(r.len_b), 1e-6);
    r.ms = isect.value_or(a.ms.nearest_region_to(b.ms));
  } else {
    // Fall back to exact balancing of the interval *midpoints* via the
    // zero-skew engine (including its snaking); the merged width at mid
    // alignment is max(width_a, width_b) <= bound inductively, so this is
    // always feasible. bound == 0 therefore reproduces the zero-skew flow.
    const SubtreeTap mid_a{a.ms, 0.5 * (a.dmin + a.dmax), a.cap};
    const SubtreeTap mid_b{b.ms, 0.5 * (b.dmin + b.dmax), b.cap};
    const MergeResult zs = zero_skew_merge(mid_a, gate_a, mid_b, gate_b, t);
    r.len_a = zs.len_a;
    r.len_b = zs.len_b;
    r.ms = zs.ms;
  }

  const Union u =
      merged_interval(a, gate_a, b, gate_b, r.len_a, r.len_b, t);
  r.dmin = u.lo;
  r.dmax = u.hi;
  r.cap = branch_cap({a.ms, 0.0, a.cap}, gate_a, r.len_a, t) +
          branch_cap({b.ms, 0.0, b.cap}, gate_b, r.len_b, t);
  return r;
}

RoutedTree embed_bounded(const Topology& topo, std::span<const Sink> sinks,
                         const std::vector<bool>& edge_gated,
                         const tech::TechParams& tech,
                         const BoundedEmbedOptions& opts) {
  assert(topo.valid());
  assert(static_cast<int>(sinks.size()) == topo.num_leaves());
  assert(static_cast<int>(edge_gated.size()) == topo.num_nodes());

  RoutedTree out;
  out.num_leaves = topo.num_leaves();
  out.root = topo.root();
  out.nodes.resize(static_cast<std::size_t>(topo.num_nodes()));

  std::vector<SkewTap> taps(static_cast<std::size_t>(topo.num_nodes()));
  for (int id = 0; id < topo.num_nodes(); ++id) {
    const TreeNode& tn = topo.node(id);
    RoutedNode& rn = out.nodes[static_cast<std::size_t>(id)];
    rn.left = tn.left;
    rn.right = tn.right;
    rn.parent = tn.parent;
    rn.gated = edge_gated[static_cast<std::size_t>(id)] && tn.parent >= 0;

    SkewTap& tap = taps[static_cast<std::size_t>(id)];
    if (tn.is_leaf()) {
      const Sink& s = sinks[static_cast<std::size_t>(id)];
      tap = {geom::TiltedRect::from_point(s.loc), 0.0, 0.0, s.cap};
    } else {
      const auto& ta = taps[static_cast<std::size_t>(tn.left)];
      const auto& tb = taps[static_cast<std::size_t>(tn.right)];
      const bool ga = out.nodes[static_cast<std::size_t>(tn.left)].gated;
      const bool gb = out.nodes[static_cast<std::size_t>(tn.right)].gated;
      const BoundedMergeResult m =
          bounded_skew_merge(ta, ga, tb, gb, tech, opts.skew_bound);
      out.nodes[static_cast<std::size_t>(tn.left)].edge_len = m.len_a;
      out.nodes[static_cast<std::size_t>(tn.right)].edge_len = m.len_b;
      tap = {m.ms, m.dmin, m.dmax, m.cap};
    }
    rn.ms = tap.ms;
    rn.delay = tap.dmax;
    rn.down_cap = tap.cap;
  }

  const std::vector<int> post = topo.postorder();
  for (auto it = post.rbegin(); it != post.rend(); ++it) {
    const int id = *it;
    RoutedNode& rn = out.nodes[static_cast<std::size_t>(id)];
    if (id == out.root) {
      rn.loc = rn.ms.nearest_point_to(opts.root_hint);
      rn.edge_len = 0.0;
      rn.gated = false;
      continue;
    }
    const geom::Point parent_loc =
        out.nodes[static_cast<std::size_t>(rn.parent)].loc;
    rn.loc = rn.ms.nearest_point_to(parent_loc);
    assert(geom::manhattan_dist(rn.loc, parent_loc) <= rn.edge_len + 1e-6);
  }
  return out;
}

}  // namespace gcr::ct

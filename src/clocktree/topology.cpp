#include "clocktree/topology.h"

#include <vector>

namespace gcr::ct {

std::vector<int> Topology::postorder() const {
  std::vector<int> order;
  if (root_ < 0) return order;
  order.reserve(static_cast<std::size_t>(num_nodes()));
  // Iterative postorder: push root, emit reversed preorder (node after
  // children by reversing a node-right-left preorder).
  std::vector<int> stack{root_};
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(num_nodes()));
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    out.push_back(id);
    const TreeNode& n = nodes_.at(static_cast<std::size_t>(id));
    if (n.left >= 0) stack.push_back(n.left);
    if (n.right >= 0) stack.push_back(n.right);
  }
  order.assign(out.rbegin(), out.rend());
  return order;
}

bool Topology::valid() const {
  if (root_ < 0) return false;
  std::vector<char> seen(static_cast<std::size_t>(num_nodes()), 0);
  std::vector<int> stack{root_};
  int count = 0;
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (id < 0 || id >= num_nodes()) return false;
    if (seen[static_cast<std::size_t>(id)]) return false;  // shared node
    seen[static_cast<std::size_t>(id)] = 1;
    ++count;
    const TreeNode& n = nodes_.at(static_cast<std::size_t>(id));
    const bool has_l = n.left >= 0;
    const bool has_r = n.right >= 0;
    if (has_l != has_r) return false;  // must be full binary
    if (has_l) {
      if (nodes_.at(static_cast<std::size_t>(n.left)).parent != id ||
          nodes_.at(static_cast<std::size_t>(n.right)).parent != id)
        return false;
      stack.push_back(n.left);
      stack.push_back(n.right);
    } else if (id >= num_leaves_) {
      return false;  // internal node without children
    }
  }
  return count == num_nodes() && nodes_.at(static_cast<std::size_t>(root_)).parent == -1;
}

}  // namespace gcr::ct

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

/// \file arena.h
/// A byte-capped allocation pool. Parsers stage untrusted input through a
/// `BoundedArena` so a hostile or corrupt file cannot grow memory without
/// bound: once the configured cap is reached, `allocate` returns nullptr
/// and the caller reports GCR_E_RESOURCE instead of letting the process
/// OOM. The arena is also a fault-injection site ("arena.alloc"), which is
/// how `gcr_check --faults` simulates allocation failure on every parser
/// path without poisoning the global allocator.

namespace gcr::guard {

class BoundedArena {
 public:
  /// `capacity_bytes` caps the *sum* of all allocation sizes (bookkeeping
  /// overhead is not charged; the cap is a policy limit, not an accounting
  /// of real RSS).
  explicit BoundedArena(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Bytes for `size`, zero-initialised; nullptr when the cap would be
  /// exceeded or an armed fault plan fires at "arena.alloc". Memory lives
  /// until the arena is destroyed (no per-allocation free).
  char* allocate(std::size_t size);

  /// Copy `size` bytes of `data` into the arena; nullptr on failure.
  char* store(const char* data, std::size_t size);

  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::size_t used_{0};
  std::vector<std::unique_ptr<char[]>> blocks_;
};

}  // namespace gcr::guard

#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file status.h
/// gcr::guard -- structured diagnostics for the routing pipeline.
///
/// Every failure the tool contract covers maps to a stable `GCR_E_*` code
/// (docs/robustness.md has the full table), carries a severity and, for
/// input problems, a file:line:col source location. `Diag` is a sink that
/// collects *multiple* diagnostics instead of dying on the first, so a
/// malformed file reports every broken line in one pass.
///
/// The exit-code contract shared by all four CLIs
/// (gcr_route/gcr_check/gcr_bench/gcr_benchdiff):
///   0  success
///   1  usage error (bad flags / missing arguments)
///   2  invalid input (unreadable, unparsable or semantically bad files)
///   3  resource cap or deadline exceeded
///   4  internal error (unexpected exception, invariant violation,
///      perf regression -- the tool ran, what it checked is broken)

namespace gcr::guard {

/// Stable diagnostic codes. Names never change once released; new codes
/// append. The printable form is code_name() (e.g. "GCR_E_PARSE").
enum class Code {
  Ok = 0,
  // -- usage / internal ---------------------------------------------------
  Usage,           ///< GCR_E_USAGE       bad command line
  Internal,        ///< GCR_E_INTERNAL    unexpected exception / numeric guard
  // -- I/O and parsing ----------------------------------------------------
  Io,              ///< GCR_E_IO          unreadable file, short read, failbit
  Header,          ///< GCR_E_HEADER      missing or malformed header line
  Parse,           ///< GCR_E_PARSE       bad token / trailing garbage
  Range,           ///< GCR_E_RANGE       id or index out of declared range
  Duplicate,       ///< GCR_E_DUPLICATE   duplicate sink coordinate / node id
  TreeStructure,   ///< GCR_E_TREE        cycle, orphan, >2 children, leaves
  // -- semantic validation ------------------------------------------------
  NonFinite,       ///< GCR_E_NONFINITE   NaN/Inf/denormal coordinate or cap
  OutOfDie,        ///< GCR_E_OUT_OF_DIE  sink outside the die area
  BadCap,          ///< GCR_E_CAP         negative (or strict: zero) load cap
  EmptyDesign,     ///< GCR_E_EMPTY       no sinks / no content where required
  DieArea,         ///< GCR_E_DIE         inverted, empty or non-finite die
  ModuleMismatch,  ///< GCR_E_MODULE_MISMATCH  rtl modules vs sinks/map
  StreamId,        ///< GCR_E_STREAM_ID   stream instruction id >= K
  // -- graceful degradation -----------------------------------------------
  Resource,        ///< GCR_E_RESOURCE    configured cap exceeded (sinks,
                   ///                    stream length, bytes, wirelength)
  Deadline,        ///< GCR_E_DEADLINE    cancelled at a phase boundary
  // -- warnings (never fail a run on their own) ---------------------------
  UnusedModules,   ///< GCR_W_UNUSED_MODULES  rtl declares more modules
  DetachedMerge,   ///< GCR_W_DETACHED_MERGE  zero-skew fallback events
  EmptyStream,     ///< GCR_W_EMPTY_STREAM    stream has no cycles
  FlightRecorder,  ///< GCR_W_FLIGHTREC       flight-recorder dump written
  // -- serving (codes append; values above stay stable) --------------------
  Overload,        ///< GCR_E_OVERLOAD    admission queue full, request shed
  CacheEvict,      ///< GCR_W_CACHE_EVICT bounded cache evicted an entry
};

[[nodiscard]] std::string_view code_name(Code c);

enum class Severity { Warning, Error, Fatal };

/// Where in an input file a diagnostic points. line/col are 1-based;
/// 0 means "not applicable" (semantic checks on in-memory designs).
struct SourceLoc {
  std::string file;
  int line{0};
  int col{0};

  [[nodiscard]] bool known() const { return line > 0; }
};

struct Status {
  Code code{Code::Ok};
  Severity severity{Severity::Error};
  std::string message;
  SourceLoc loc;

  [[nodiscard]] static Status ok() { return {}; }
  [[nodiscard]] bool is_ok() const { return code == Code::Ok; }
  [[nodiscard]] bool is_error() const {
    return code != Code::Ok && severity != Severity::Warning;
  }
  /// "file:3:7: error GCR_E_PARSE: trailing garbage after sink cap"
  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] Status make_error(Code c, std::string message,
                                SourceLoc loc = {});
[[nodiscard]] Status make_warning(Code c, std::string message,
                                  SourceLoc loc = {});

/// Exit code the CLI contract assigns to a diagnostic code.
[[nodiscard]] int exit_code_for(Code c);

/// Process-wide observer invoked for every non-ok Status a Diag collects
/// (including reports past the entry cap -- the observer sees what the
/// bounded buffer drops). gcr::log installs its event bridge here so each
/// diagnostic doubles as a structured `guard.diag` event; nullptr (the
/// default) keeps Diag's behavior byte-identical. Returns the previous
/// hook so installers can chain or restore it. Function pointer rather
/// than std::function: guard sits below log in the link graph, and the
/// hook must be callable with no allocation from any thread.
using DiagHook = void (*)(const Status&);
DiagHook set_diag_hook(DiagHook hook);

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 1;
inline constexpr int kExitInvalidInput = 2;
inline constexpr int kExitResource = 3;
inline constexpr int kExitInternal = 4;

/// Exception used by the legacy throwing APIs and the cancellation path;
/// derives std::runtime_error so pre-guard catch sites keep working.
class GuardError : public std::runtime_error {
 public:
  explicit GuardError(Status s)
      : std::runtime_error(s.to_string()), status_(std::move(s)) {}

  [[nodiscard]] const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Thrown by guard::poll_deadline when the ambient deadline expired; the
/// router catches it at the outcome boundary and reports a partial run.
class CancelledError : public GuardError {
 public:
  explicit CancelledError(std::string phase)
      : GuardError(make_error(Code::Deadline,
                              "deadline expired during phase '" + phase +
                                  "'")),
        phase_(std::move(phase)) {}

  [[nodiscard]] const std::string& phase() const { return phase_; }

 private:
  std::string phase_;
};

/// Collects diagnostics instead of dying on the first. Bounded: past
/// `max_entries` further reports are counted but dropped, so a pathological
/// input cannot turn the diagnostics themselves into a resource problem.
class Diag {
 public:
  explicit Diag(std::size_t max_entries = 64) : max_entries_(max_entries) {}

  void report(Status s);
  void error(Code c, std::string message, SourceLoc loc = {}) {
    report(make_error(c, std::move(message), std::move(loc)));
  }
  void warning(Code c, std::string message, SourceLoc loc = {}) {
    report(make_warning(c, std::move(message), std::move(loc)));
  }

  [[nodiscard]] const std::vector<Status>& entries() const { return entries_; }
  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] std::size_t warning_count() const {
    return entries_.size() + dropped_ - error_count_;
  }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

  /// The first error entry; Status::ok() when there are none.
  [[nodiscard]] Status first_error() const;
  /// True when some entry (error or warning) carries `c`.
  [[nodiscard]] bool has_code(Code c) const;

  /// The exit code the worst collected diagnostic maps to (kExitOk when
  /// only warnings were reported).
  [[nodiscard]] int exit_code() const;

  /// One diagnostic per line, errors and warnings in report order.
  void print(std::ostream& os) const;

 private:
  std::size_t max_entries_;
  std::size_t error_count_{0};
  std::size_t dropped_{0};
  std::vector<Status> entries_;
};

/// Result<T>: either a value or the Status that prevented one.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-*)
  Result(Status s) : status_(std::move(s)) {}    // NOLINT(google-explicit-*)

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T&& value() && { return std::move(*value_); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_{};  ///< Ok when value_ engaged
};

}  // namespace gcr::guard

#pragma once

#include <string>

/// \file postmortem.h
/// gcr::guard glue between the structured-diagnostics layer and the
/// gcr::prof flight recorder (prof/flightrec.h).
///
/// The recorder is default-on and always holds the last-N events per
/// thread; this file decides *when that tail gets written to disk*:
///
///   * `postmortem_dump(path)` -- explicit dump, used by the CLIs on
///     deadline expiry and other non-zero exits, and by the gcr_check
///     fault harness after an injected-failure sweep. The caller then
///     attaches a `GCR_W_FLIGHTREC` warning naming the file to its Diag,
///     so the dump is discoverable from the diagnostic stream alone.
///   * `install_postmortem(path)` -- crash insurance: registers fatal
///     signal handlers (SIGSEGV/SIGABRT/SIGBUS/SIGFPE) and a terminate
///     handler that write the rings with the signal-safe fd writer before
///     re-raising. Skipped when the build runs under ASan/TSan -- the
///     sanitizers own those signals and their report is strictly more
///     useful than ours.

namespace gcr::guard {

/// Write the flight-recorder rings to `path` now. Returns false (quietly)
/// when the file cannot be opened -- a failing dump must never turn a
/// diagnosed run into a worse one.
bool postmortem_dump(const std::string& path);

/// Install crash handlers that dump to `path` (copied into static storage,
/// truncated to 255 bytes) before re-raising the fatal signal. Idempotent;
/// the latest path wins.
void install_postmortem(const std::string& path);

}  // namespace gcr::guard

#pragma once

#include <chrono>

#include "guard/status.h"

/// \file deadline.h
/// Cooperative cancellation for long router runs. A `Deadline` is a value
/// type (unlimited by default); `DeadlineScope` installs one as the calling
/// thread's ambient deadline, and the pipeline polls it at deterministic
/// program points -- phase boundaries in route(), between merge steps in
/// the greedy engine, and before every gcr::par parallel construct.
///
/// Polling throws `CancelledError`, which route_guarded() converts into a
/// partial RouteOutcome (exit code 3). Because every poll site is a
/// deterministic position in the *serial* control flow (never inside a
/// pool worker's chunk), the set of possible abort points is identical at
/// any thread width; which of them fires depends only on wall-clock time.
/// See docs/robustness.md for the exact semantics.

namespace gcr::guard {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  ///< unlimited

  [[nodiscard]] static Deadline after_ms(double ms) {
    Deadline d;
    d.limited_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  [[nodiscard]] bool unlimited() const { return !limited_; }
  [[nodiscard]] bool expired() const {
    return limited_ && Clock::now() >= at_;
  }

 private:
  bool limited_{false};
  Clock::time_point at_{};
};

/// RAII: installs `d` as this thread's ambient deadline for the scope's
/// lifetime (restores the previous one on destruction, so nested scopes
/// compose). An unlimited deadline still installs -- inner code sees "a
/// deadline exists but never expires".
class DeadlineScope {
 public:
  explicit DeadlineScope(const Deadline& d);
  ~DeadlineScope();
  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  const Deadline* prev_;
};

/// The calling thread's ambient deadline; nullptr when no scope is active
/// (pool workers never inherit one -- polls live in serial control flow).
[[nodiscard]] const Deadline* current_deadline();

/// Throw CancelledError(phase) when the ambient deadline expired. No-op
/// without a scope or with an unlimited deadline.
void poll_deadline(const char* phase);

}  // namespace gcr::guard

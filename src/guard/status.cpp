#include "guard/status.h"

#include <algorithm>
#include <atomic>
#include <ostream>

namespace gcr::guard {

std::string_view code_name(Code c) {
  switch (c) {
    case Code::Ok: return "GCR_OK";
    case Code::Usage: return "GCR_E_USAGE";
    case Code::Internal: return "GCR_E_INTERNAL";
    case Code::Io: return "GCR_E_IO";
    case Code::Header: return "GCR_E_HEADER";
    case Code::Parse: return "GCR_E_PARSE";
    case Code::Range: return "GCR_E_RANGE";
    case Code::Duplicate: return "GCR_E_DUPLICATE";
    case Code::TreeStructure: return "GCR_E_TREE";
    case Code::NonFinite: return "GCR_E_NONFINITE";
    case Code::OutOfDie: return "GCR_E_OUT_OF_DIE";
    case Code::BadCap: return "GCR_E_CAP";
    case Code::EmptyDesign: return "GCR_E_EMPTY";
    case Code::DieArea: return "GCR_E_DIE";
    case Code::ModuleMismatch: return "GCR_E_MODULE_MISMATCH";
    case Code::StreamId: return "GCR_E_STREAM_ID";
    case Code::Resource: return "GCR_E_RESOURCE";
    case Code::Deadline: return "GCR_E_DEADLINE";
    case Code::UnusedModules: return "GCR_W_UNUSED_MODULES";
    case Code::DetachedMerge: return "GCR_W_DETACHED_MERGE";
    case Code::EmptyStream: return "GCR_W_EMPTY_STREAM";
    case Code::FlightRecorder: return "GCR_W_FLIGHTREC";
    case Code::Overload: return "GCR_E_OVERLOAD";
    case Code::CacheEvict: return "GCR_W_CACHE_EVICT";
  }
  return "GCR_E_INTERNAL";
}

std::string Status::to_string() const {
  std::string out;
  if (!loc.file.empty()) out += loc.file + ":";
  if (loc.line > 0) {
    out += std::to_string(loc.line);
    if (loc.col > 0) out += ":" + std::to_string(loc.col);
    out += ":";
  }
  if (!out.empty()) out += " ";
  out += severity == Severity::Warning ? "warning " : "error ";
  out += code_name(code);
  out += ": ";
  out += message;
  return out;
}

Status make_error(Code c, std::string message, SourceLoc loc) {
  return Status{c, Severity::Error, std::move(message), std::move(loc)};
}

Status make_warning(Code c, std::string message, SourceLoc loc) {
  return Status{c, Severity::Warning, std::move(message), std::move(loc)};
}

int exit_code_for(Code c) {
  switch (c) {
    case Code::Ok:
    case Code::UnusedModules:
    case Code::DetachedMerge:
    case Code::EmptyStream:
    case Code::FlightRecorder:
    case Code::CacheEvict:
      return kExitOk;
    case Code::Usage:
      return kExitUsage;
    case Code::Io:
    case Code::Header:
    case Code::Parse:
    case Code::Range:
    case Code::Duplicate:
    case Code::TreeStructure:
    case Code::NonFinite:
    case Code::OutOfDie:
    case Code::BadCap:
    case Code::EmptyDesign:
    case Code::DieArea:
    case Code::ModuleMismatch:
    case Code::StreamId:
      return kExitInvalidInput;
    case Code::Resource:
    case Code::Deadline:
    case Code::Overload:
      return kExitResource;
    case Code::Internal:
      return kExitInternal;
  }
  return kExitInternal;
}

namespace {
std::atomic<DiagHook> g_diag_hook{nullptr};
}  // namespace

DiagHook set_diag_hook(DiagHook hook) {
  return g_diag_hook.exchange(hook, std::memory_order_acq_rel);
}

void Diag::report(Status s) {
  if (s.is_ok()) return;
  if (const DiagHook hook = g_diag_hook.load(std::memory_order_acquire))
    hook(s);
  if (s.severity != Severity::Warning) ++error_count_;
  if (entries_.size() >= max_entries_) {
    ++dropped_;
    return;
  }
  entries_.push_back(std::move(s));
}

Status Diag::first_error() const {
  for (const Status& s : entries_)
    if (s.severity != Severity::Warning) return s;
  return Status::ok();
}

bool Diag::has_code(Code c) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [c](const Status& s) { return s.code == c; });
}

int Diag::exit_code() const {
  int worst = kExitOk;
  for (const Status& s : entries_) {
    if (s.severity == Severity::Warning) continue;
    worst = std::max(worst, exit_code_for(s.code));
  }
  return worst;
}

void Diag::print(std::ostream& os) const {
  for (const Status& s : entries_) os << s.to_string() << '\n';
  if (dropped_ > 0)
    os << "(" << dropped_ << " further diagnostics dropped)\n";
}

}  // namespace gcr::guard

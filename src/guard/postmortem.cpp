#include "guard/postmortem.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstring>
#include <exception>
#include <fstream>

#include "prof/flightrec.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GCR_UNDER_SANITIZER 1
#endif
#elif defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GCR_UNDER_SANITIZER 1
#endif

namespace gcr::guard {

namespace {

char g_crash_path[256] = {0};

#if !defined(GCR_UNDER_SANITIZER)

extern "C" void crash_signal_handler(int sig) {
  // Async-signal context: open(2)/write(2) only, no allocation, no locks.
  const int fd = open(g_crash_path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd >= 0) {
    prof::write_flight_record_fd(fd);
    close(fd);
  }
  // Restore the default disposition and re-raise so the process still dies
  // with the original signal (core dumps, CI failure detection).
  signal(sig, SIG_DFL);
  raise(sig);
}

void terminate_dump() {
  const int fd = open(g_crash_path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd >= 0) {
    prof::write_flight_record_fd(fd);
    close(fd);
  }
  std::abort();
}

#endif  // !GCR_UNDER_SANITIZER

}  // namespace

bool postmortem_dump(const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  prof::write_flight_record(os);
  return os.good();
}

void install_postmortem(const std::string& path) {
  std::strncpy(g_crash_path, path.c_str(), sizeof g_crash_path - 1);
  g_crash_path[sizeof g_crash_path - 1] = '\0';
#if !defined(GCR_UNDER_SANITIZER)
  for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE})
    signal(sig, &crash_signal_handler);
  std::set_terminate(&terminate_dump);
#endif
}

}  // namespace gcr::guard

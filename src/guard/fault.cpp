#include "guard/fault.h"

#include <algorithm>
#include <ios>
#include <utility>

#include "prof/flightrec.h"

namespace gcr::guard {

namespace {

/// splitmix64 finalizer: a cheap, well-mixed hash so per-visit fire
/// decisions are independent of each other and of the visit order of
/// unrelated sites.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector& FaultInjector::global() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::arm(const FaultPlan& plan) {
  plan_ = plan;
  visited_.store(0, std::memory_order_relaxed);
  fired_.store(0, std::memory_order_relaxed);
  last_site_.store(nullptr, std::memory_order_relaxed);
  armed_.store(plan.armed(), std::memory_order_release);
}

void FaultInjector::disarm() {
  armed_.store(false, std::memory_order_release);
}

bool FaultInjector::should_inject(const char* site) {
  if (!armed()) return false;
  const std::uint64_t visit =
      visited_.fetch_add(1, std::memory_order_relaxed) + 1;  // 1-based
  bool fire = false;
  if (plan_.nth > 0) {
    fire = visit == plan_.nth;
  } else if (plan_.probability > 0.0) {
    // Deterministic Bernoulli draw from (seed, visit index).
    const std::uint64_t h = mix64(plan_.seed ^ mix64(visit));
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
    fire = u < plan_.probability;
  }
  if (fire) {
    fired_.fetch_add(1, std::memory_order_relaxed);
    last_site_.store(site, std::memory_order_relaxed);
    if (prof::recorder_enabled())
      prof::record(prof::Ev::FaultHit, site,
                   static_cast<std::int64_t>(visit));
  }
  return fire;
}

std::string FaultInjector::last_site() const {
  const char* s = last_site_.load(std::memory_order_relaxed);
  return s == nullptr ? std::string{} : std::string{s};
}

ShortReadStreambuf::ShortReadStreambuf(std::string payload, std::size_t fail_at,
                                       Mode mode)
    : payload_(std::move(payload)), fail_at_(fail_at), mode_(mode) {
  const std::size_t avail = std::min(fail_at_, payload_.size());
  char* base = payload_.data();
  setg(base, base, base + avail);
}

ShortReadStreambuf::int_type ShortReadStreambuf::underflow() {
  // The whole serveable window was installed in the constructor, so any
  // refill request means the window is exhausted.
  if (fail_at_ >= payload_.size()) return traits_type::eof();  // true EOF
  tripped_ = true;
  if (mode_ == Mode::Truncate) return traits_type::eof();
  // Mode::Fail: istream turns an exception from underflow into badbit.
  throw std::ios_base::failure("injected mid-file read failure");
}

ShortReadStream::ShortReadStream(std::string payload, std::size_t fail_at,
                                 ShortReadStreambuf::Mode mode)
    : std::istream(nullptr), buf_(std::move(payload), fail_at, mode) {
  rdbuf(&buf_);
}

}  // namespace gcr::guard

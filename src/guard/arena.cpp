#include "guard/arena.h"

#include <cstring>

#include "guard/fault.h"

namespace gcr::guard {

char* BoundedArena::allocate(std::size_t size) {
  if (size > capacity_ || used_ > capacity_ - size) return nullptr;
  if (fault_point("arena.alloc")) return nullptr;
  auto block = std::make_unique<char[]>(size == 0 ? 1 : size);
  char* p = block.get();
  std::memset(p, 0, size == 0 ? 1 : size);
  blocks_.push_back(std::move(block));
  used_ += size;
  return p;
}

char* BoundedArena::store(const char* data, std::size_t size) {
  char* p = allocate(size);
  if (p != nullptr && size > 0) std::memcpy(p, data, size);
  return p;
}

}  // namespace gcr::guard

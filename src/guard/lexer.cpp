#include "guard/lexer.h"

#include <cctype>
#include <charconv>
#include <istream>
#include <limits>

#include "guard/fault.h"

namespace gcr::guard {

namespace {

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

}  // namespace

void LineCursor::skip_ws() {
  while (pos_ < text_.size() && is_space(text_[pos_])) ++pos_;
}

bool LineCursor::next_token(std::string_view& tok) {
  skip_ws();
  if (pos_ >= text_.size()) {
    tok_start_ = pos_;
    last_tok_ = {};
    return false;
  }
  tok_start_ = pos_;
  while (pos_ < text_.size() && !is_space(text_[pos_])) ++pos_;
  tok = text_.substr(tok_start_, pos_ - tok_start_);
  last_tok_ = tok;
  return true;
}

bool LineCursor::next_int(int& v) {
  std::string_view tok;
  if (!next_token(tok)) return false;
  long long wide = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), wide);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) return false;
  if (wide < std::numeric_limits<int>::min() ||
      wide > std::numeric_limits<int>::max())
    return false;
  v = static_cast<int>(wide);
  return true;
}

bool LineCursor::next_double(double& v) {
  std::string_view tok;
  if (!next_token(tok)) return false;
  double d = 0;
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(),
                                         d, std::chars_format::general);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) return false;
  v = d;
  return true;
}

bool LineCursor::at_end() {
  skip_ws();
  if (pos_ >= text_.size()) return true;
  tok_start_ = pos_;  // so loc() points at the stray character
  return false;
}

SourceLoc LineCursor::loc() const {
  return SourceLoc{*file_, line_, static_cast<int>(tok_start_) + 1};
}

Lexer::Lexer(std::istream& is, std::string filename, std::size_t max_bytes)
    : file_(std::move(filename)), arena_(max_bytes) {
  std::string raw;
  std::size_t raw_bytes = 0;
  while (std::getline(is, raw)) {
    ++last_raw_line_;
    raw_bytes += raw.size() + 1;
    if (raw_bytes > max_bytes) {
      load_status_ = make_error(
          Code::Resource,
          "input exceeds " + std::to_string(max_bytes) + " byte cap",
          end_loc());
      return;
    }
    if (fault_point("lexer.read")) {
      load_status_ =
          make_error(Code::Io, "injected read failure", end_loc());
      return;
    }
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    if (raw.find_first_not_of(" \t\r\v\f") == std::string::npos) continue;
    char* stored = arena_.store(raw.data(), raw.size());
    if (stored == nullptr) {
      load_status_ =
          make_error(Code::Resource, "input arena allocation failed",
                     SourceLoc{file_, last_raw_line_, 1});
      return;
    }
    lines_.push_back(
        Line{std::string_view(stored, raw.size()), last_raw_line_});
  }
  // getline failing *without* reaching EOF means the underlying stream
  // broke mid-file (badbit): a short read, not a short file.
  if (is.bad() || (is.fail() && !is.eof())) {
    load_status_ = make_error(
        Code::Io, "stream failed before end of file (short read?)",
        end_loc());
  }
}

}  // namespace gcr::guard

#include "guard/validate.h"

#include <cmath>
#include <map>
#include <string>
#include <utility>

namespace gcr::guard {

namespace {

std::string idx(const char* what, std::size_t i) {
  return std::string(what) + " " + std::to_string(i);
}

}  // namespace

bool validate_design(const core::Design& design, Diag& diag,
                     const ValidateOptions& opts) {
  const std::size_t errors_before = diag.error_count();
  const auto demote = [&](Code c, std::string msg) {
    if (opts.strict)
      diag.error(c, std::move(msg));
    else
      diag.warning(c, std::move(msg));
  };

  // --- die ----------------------------------------------------------------
  const geom::DieArea& die = design.die;
  if (!finite_normal(die.xlo) || !finite_normal(die.ylo) ||
      !finite_normal(die.xhi) || !finite_normal(die.yhi)) {
    diag.error(Code::DieArea, "die bounds are not finite");
  } else if (die.width() <= 0.0 || die.height() <= 0.0) {
    diag.error(Code::DieArea, "die area is empty or inverted");
  }

  // --- resource caps ------------------------------------------------------
  const Limits& lim = opts.limits;
  if (lim.max_sinks > 0 && design.sinks.size() > lim.max_sinks)
    diag.error(Code::Resource,
               std::to_string(design.sinks.size()) + " sinks exceed cap of " +
                   std::to_string(lim.max_sinks));
  if (lim.max_stream_length > 0 &&
      design.stream.seq.size() > lim.max_stream_length)
    diag.error(Code::Resource, "stream length " +
                                   std::to_string(design.stream.seq.size()) +
                                   " exceeds cap of " +
                                   std::to_string(lim.max_stream_length));
  if (lim.max_instructions > 0 &&
      static_cast<std::size_t>(design.rtl.num_instructions()) >
          lim.max_instructions)
    diag.error(Code::Resource, "instruction count exceeds cap of " +
                                   std::to_string(lim.max_instructions));
  if (lim.max_modules > 0 &&
      static_cast<std::size_t>(design.rtl.num_modules()) > lim.max_modules)
    diag.error(Code::Resource, "module count exceeds cap of " +
                                   std::to_string(lim.max_modules));
  if (diag.error_count() > errors_before) return false;  // caps gate the rest

  // --- sinks --------------------------------------------------------------
  if (design.sinks.empty()) diag.error(Code::EmptyDesign, "design has no sinks");
  std::map<std::pair<double, double>, std::size_t> seen;
  for (std::size_t i = 0; i < design.sinks.size(); ++i) {
    const ct::Sink& s = design.sinks[i];
    if (!finite_normal(s.loc.x) || !finite_normal(s.loc.y)) {
      diag.error(Code::NonFinite,
                 idx("sink", i) + " has a non-finite or denormal coordinate");
      continue;  // further checks on this sink would be noise
    }
    if (!finite_normal(s.cap)) {
      diag.error(Code::NonFinite,
                 idx("sink", i) + " has a non-finite or denormal capacitance");
    } else if (s.cap < 0.0) {
      diag.error(Code::BadCap, idx("sink", i) + " has negative capacitance");
    } else if (s.cap == 0.0) {
      demote(Code::BadCap, idx("sink", i) + " has zero capacitance");
    }
    if (!die.contains(s.loc))
      demote(Code::OutOfDie, idx("sink", i) + " lies outside the die area");
    const auto [it, inserted] = seen.emplace(
        std::make_pair(s.loc.x, s.loc.y), i);
    if (!inserted)
      demote(Code::Duplicate, idx("sink", i) + " duplicates the location of " +
                                  idx("sink", it->second));
  }

  // --- rtl / sink-module mapping ------------------------------------------
  const int num_modules = design.rtl.num_modules();
  if (design.sink_module.empty()) {
    if (static_cast<std::size_t>(num_modules) < design.sinks.size())
      diag.error(Code::ModuleMismatch,
                 "rtl declares " + std::to_string(num_modules) +
                     " modules but the design has " +
                     std::to_string(design.sinks.size()) +
                     " sinks (identity mapping needs one module per sink)");
    else if (static_cast<std::size_t>(num_modules) > design.sinks.size())
      diag.warning(Code::UnusedModules,
                   "rtl declares " + std::to_string(num_modules) +
                       " modules for " + std::to_string(design.sinks.size()) +
                       " sinks; the excess modules are never routed");
  } else {
    if (design.sink_module.size() != design.sinks.size())
      diag.error(Code::ModuleMismatch,
                 "sink_module maps " +
                     std::to_string(design.sink_module.size()) +
                     " sinks but the design has " +
                     std::to_string(design.sinks.size()));
    for (std::size_t i = 0; i < design.sink_module.size(); ++i) {
      const int m = design.sink_module[i];
      if (m < 0 || m >= num_modules) {
        diag.error(Code::ModuleMismatch,
                   idx("sink", i) + " maps to module " + std::to_string(m) +
                       ", outside [0, " + std::to_string(num_modules) + ")");
      }
    }
  }

  // --- stream -------------------------------------------------------------
  const int num_instr = design.rtl.num_instructions();
  std::size_t bad_ids = 0;
  std::size_t first_bad = 0;
  int first_bad_id = 0;
  for (std::size_t t = 0; t < design.stream.seq.size(); ++t) {
    const int id = design.stream.seq[t];
    if (id < 0 || id >= num_instr) {
      if (bad_ids == 0) {
        first_bad = t;
        first_bad_id = id;
      }
      ++bad_ids;
    }
  }
  if (bad_ids > 0)
    diag.error(Code::StreamId,
               std::to_string(bad_ids) +
                   " stream entries reference instructions outside [0, " +
                   std::to_string(num_instr) + "); first at cycle " +
                   std::to_string(first_bad) + " (id " +
                   std::to_string(first_bad_id) + ")");
  if (design.stream.seq.empty())
    diag.warning(Code::EmptyStream,
                 "instruction stream is empty; activity factors fall back "
                 "to uniform");

  return diag.error_count() == errors_before;
}

}  // namespace gcr::guard

#pragma once

#include <atomic>
#include <cstdint>
#include <istream>
#include <streambuf>
#include <string>
#include <string_view>

/// \file fault.h
/// Deterministic, seeded fault injection. The pipeline marks designated
/// recovery paths with `guard::fault_point("site")`; when a `FaultPlan` is
/// armed, the injector decides -- purely from (seed, visit counter) --
/// whether each visited point fires. Armed sites simulate the failure they
/// guard (a failed read, an exhausted arena), and the surrounding code must
/// turn that into a clean `Status`, never UB: `gcr_check --faults` sweeps
/// hundreds of injection points under ASan to prove it.
///
/// `ShortReadStreambuf` complements the in-process points for I/O: it
/// serves a payload but fails (badbit) after a chosen byte count, modeling
/// short reads and mid-file stream failure for the text parsers.

namespace gcr::guard {

struct FaultPlan {
  std::uint64_t seed{0};
  /// When > 0: fire exactly at the nth visited fault point (1-based).
  std::uint64_t nth{0};
  /// Else: each visited point fires independently with this probability,
  /// derived deterministically from (seed, visit index).
  double probability{0.0};

  [[nodiscard]] bool armed() const { return nth > 0 || probability > 0.0; }
};

/// Process-wide injector. Disarmed by default: `fault_point()` is a single
/// relaxed atomic load on the hot path. Arm/disarm only from a quiescent
/// point (the test/harness driver), not concurrently with guarded work.
class FaultInjector {
 public:
  static FaultInjector& global();

  void arm(const FaultPlan& plan);  ///< resets the visit/fire counters
  void disarm();
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Visit a fault point; true when the plan says this visit fires.
  bool should_inject(const char* site);

  [[nodiscard]] std::uint64_t points_visited() const {
    return visited_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t faults_fired() const {
    return fired_.load(std::memory_order_relaxed);
  }
  /// Site name of the most recent fired point ("" when none).
  [[nodiscard]] std::string last_site() const;

 private:
  std::atomic<bool> armed_{false};
  FaultPlan plan_{};
  std::atomic<std::uint64_t> visited_{0};
  std::atomic<std::uint64_t> fired_{0};
  std::atomic<const char*> last_site_{nullptr};
};

/// Shorthand for call sites: false when the injector is disarmed.
[[nodiscard]] inline bool fault_point(const char* site) {
  FaultInjector& fi = FaultInjector::global();
  return fi.armed() && fi.should_inject(site);
}

/// A streambuf over an in-memory payload that stops after `fail_at` bytes.
/// Two failure models:
///   Truncate -- the payload simply ends early (a short read that the OS
///               reported as EOF); indistinguishable from a shorter file.
///   Fail     -- the refill past the limit throws, which std::istream
///               converts to badbit: a mid-file I/O error.
class ShortReadStreambuf : public std::streambuf {
 public:
  enum class Mode { Truncate, Fail };

  /// `fail_at >= payload.size()` serves the whole payload normally.
  ShortReadStreambuf(std::string payload, std::size_t fail_at,
                     Mode mode = Mode::Fail);

  /// True once a read ran into the failure point.
  [[nodiscard]] bool tripped() const { return tripped_; }

 protected:
  int_type underflow() override;

 private:
  std::string payload_;
  std::size_t fail_at_;
  Mode mode_;
  bool tripped_{false};
};

/// An istream over ShortReadStreambuf: in Fail mode it goes bad() at the
/// failure point, exactly how a real mid-file I/O error surfaces.
class ShortReadStream : public std::istream {
 public:
  ShortReadStream(std::string payload, std::size_t fail_at,
                  ShortReadStreambuf::Mode mode = ShortReadStreambuf::Mode::Fail);

  [[nodiscard]] bool tripped() const { return buf_.tripped(); }

 private:
  ShortReadStreambuf buf_;
};

}  // namespace gcr::guard

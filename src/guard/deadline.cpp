#include "guard/deadline.h"

namespace gcr::guard {

namespace {
thread_local const Deadline* t_deadline = nullptr;
}  // namespace

DeadlineScope::DeadlineScope(const Deadline& d) : prev_(t_deadline) {
  t_deadline = &d;
}

DeadlineScope::~DeadlineScope() { t_deadline = prev_; }

const Deadline* current_deadline() { return t_deadline; }

void poll_deadline(const char* phase) {
  if (t_deadline != nullptr && t_deadline->expired())
    throw CancelledError(phase);
}

}  // namespace gcr::guard

#include "guard/deadline.h"

#include "prof/flightrec.h"

namespace gcr::guard {

namespace {
thread_local const Deadline* t_deadline = nullptr;
}  // namespace

DeadlineScope::DeadlineScope(const Deadline& d) : prev_(t_deadline) {
  t_deadline = &d;
}

DeadlineScope::~DeadlineScope() { t_deadline = prev_; }

const Deadline* current_deadline() { return t_deadline; }

void poll_deadline(const char* phase) {
  if (t_deadline == nullptr || t_deadline->unlimited()) return;
  // Only *limited* polls are flight-recorded: they are the deterministic
  // abort points a post-mortem needs, and unlimited runs stay quiet.
  if (t_deadline->expired()) {
    if (prof::recorder_enabled())
      prof::record(prof::Ev::DeadlineExpired, phase);
    throw CancelledError(phase);
  }
  if (prof::recorder_enabled()) prof::record(prof::Ev::DeadlinePoll, phase);
}

}  // namespace gcr::guard

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "guard/arena.h"
#include "guard/status.h"

/// \file lexer.h
/// Line/column-tracking input front end for the text parsers. A `Lexer`
/// drains a stream up front into a `BoundedArena` (so the byte cap and
/// allocation faults apply before any parsing), strips '#' comments and
/// blank lines while remembering original 1-based line numbers, and
/// distinguishes true EOF from a mid-file stream failure (short read).
///
/// `LineCursor` then tokenises one payload line with std::from_chars and
/// reports the exact 1-based column of the offending token, which is what
/// gives every GCR_E_PARSE diagnostic its file:line:col anchor.

namespace gcr::guard {

class LineCursor {
 public:
  LineCursor(std::string_view text, const std::string* file, int line)
      : text_(text), file_(file), line_(line) {}

  /// Next whitespace-delimited token; false at end of line.
  bool next_token(std::string_view& tok);
  /// Next token parsed as an int (whole token must parse, value must fit).
  bool next_int(int& v);
  /// Next token parsed as a double ("inf"/"nan" parse; semantic layers
  /// decide whether non-finite values are acceptable).
  bool next_double(double& v);

  /// True when only whitespace remains.
  [[nodiscard]] bool at_end();

  /// Location of the most recent token (or of the line end / next
  /// unconsumed character when no token was read yet).
  [[nodiscard]] SourceLoc loc() const;
  /// The most recent token ("" before the first next_* call).
  [[nodiscard]] std::string_view last_token() const { return last_tok_; }

 private:
  void skip_ws();

  std::string_view text_;
  const std::string* file_;
  int line_;
  std::size_t pos_{0};
  std::size_t tok_start_{0};
  std::string_view last_tok_;
};

class Lexer {
 public:
  /// Default input cap: generous for real designs, small enough that a
  /// runaway file fails fast with GCR_E_RESOURCE instead of thrashing.
  static constexpr std::size_t kDefaultMaxBytes = 64u << 20;  // 64 MiB

  /// Drains `is` completely (or until the byte cap / an I/O failure).
  Lexer(std::istream& is, std::string filename,
        std::size_t max_bytes = kDefaultMaxBytes);

  /// Ok, or the GCR_E_IO / GCR_E_RESOURCE status that interrupted loading.
  [[nodiscard]] const Status& load_status() const { return load_status_; }
  [[nodiscard]] bool ok() const { return load_status_.is_ok(); }

  [[nodiscard]] const std::string& file() const { return file_; }
  /// Number of payload (non-blank, comment-stripped) lines.
  [[nodiscard]] std::size_t num_lines() const { return lines_.size(); }
  /// Original 1-based line number of payload line `i`.
  [[nodiscard]] int line_number(std::size_t i) const {
    return lines_[i].number;
  }
  [[nodiscard]] std::string_view line_text(std::size_t i) const {
    return lines_[i].text;
  }
  [[nodiscard]] LineCursor cursor(std::size_t i) const {
    return LineCursor(lines_[i].text, &file_, lines_[i].number);
  }
  /// Location pointing at payload line `i` (column 1).
  [[nodiscard]] SourceLoc line_loc(std::size_t i) const {
    return SourceLoc{file_, lines_[i].number, 1};
  }
  /// Location just past the last line read (where EOF / the failure hit).
  [[nodiscard]] SourceLoc end_loc() const {
    return SourceLoc{file_, last_raw_line_ + 1, 1};
  }

 private:
  struct Line {
    std::string_view text;  ///< comment-stripped, arena-backed
    int number;             ///< 1-based line in the original file
  };

  std::string file_;
  Status load_status_{};
  BoundedArena arena_;
  std::vector<Line> lines_;
  int last_raw_line_{0};
};

}  // namespace gcr::guard

#pragma once

#include <cmath>
#include <cstddef>

#include "core/design.h"
#include "guard/status.h"

/// \file validate.h
/// Semantic validation of a core::Design -- the single gate every entry
/// point (route(), all four CLIs, the fuzz harness) runs before touching
/// the geometry or activity kernels. The checks reject exactly the inputs
/// that previously produced UB, asserts, or silent nonsense:
///
///   GCR_E_NONFINITE        NaN/Inf/denormal coordinate or capacitance
///   GCR_E_OUT_OF_DIE       sink outside the die area
///   GCR_E_CAP              negative (strict: also zero) load capacitance
///   GCR_E_DUPLICATE        two sinks at identical coordinates (strict)
///   GCR_E_EMPTY            no sinks
///   GCR_E_DIE              inverted / empty / non-finite die box
///   GCR_E_MODULE_MISMATCH  rtl module count vs sinks / explicit map
///   GCR_E_STREAM_ID        stream instruction id outside [0, K)
///   GCR_E_RESOURCE         a configured Limits cap exceeded
///
/// Lenient mode (route()'s default) downgrades out-of-die, duplicate and
/// zero-cap findings to warnings -- the router can produce a tree for
/// those -- while strict mode (tools, fuzzing) makes them errors.

namespace gcr::guard {

/// NaN, Inf and denormals are all rejected as input values: denormals
/// survive arithmetic with silently degraded precision and flush-to-zero
/// inconsistency across build flags, so they are as untrustworthy in an
/// input file as a NaN.
[[nodiscard]] inline bool finite_normal(double v) {
  const int cls = std::fpclassify(v);
  return cls == FP_NORMAL || cls == FP_ZERO;
}

/// Resource caps. Zero disables a cap. Defaults are far above any design
/// in the test suite but low enough to fail fast on garbage.
struct Limits {
  std::size_t max_sinks{1u << 20};
  std::size_t max_stream_length{1u << 24};
  std::size_t max_instructions{1u << 20};
  std::size_t max_modules{1u << 20};

  [[nodiscard]] static Limits unlimited() { return Limits{0, 0, 0, 0}; }
};

struct ValidateOptions {
  Limits limits{};
  /// Strict: out-of-die / duplicate-coordinate / zero-cap sinks are errors.
  /// Lenient: they are warnings (the router tolerates them).
  bool strict{true};
};

/// Reports every finding into `diag`; true when no *errors* were added
/// (warnings alone do not fail validation).
bool validate_design(const core::Design& design, Diag& diag,
                     const ValidateOptions& opts = {});

}  // namespace gcr::guard

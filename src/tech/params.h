#pragma once

/// \file params.h
/// Technology parameters used by the delay, power and area models.
///
/// Units (consistent throughout the library):
///   * distance     : lambda (layout units)
///   * resistance   : ohm
///   * capacitance  : pF
///   * time         : ohm * pF = ps (all delays are Elmore RC products)
///   * area         : lambda^2
///
/// The defaults follow the regime of the r1-r5 zero-skew benchmark era:
/// wire delay dominates cell delay, so zero-skew wire balancing (including
/// snaking) is affordable; gates chiefly act as capacitance isolators. A
/// masking AND's intrinsic delay (10 ps) is small against a cross-die wire
/// delay (hundreds of ps), which keeps the detour wirelength bounded when
/// the gate-reduction heuristic makes sibling branches electrically
/// asymmetric.

namespace gcr::tech {

/// Parameters of the masking AND gate / buffer library and the routing layer.
struct TechParams {
  // --- wire -----------------------------------------------------------
  double unit_res = 0.03;      ///< wire resistance per lambda [ohm]
  double unit_cap = 2.0e-4;    ///< wire capacitance per lambda [pF] (0.2 fF)
  double wire_width = 1.0;     ///< routed wire width [lambda] (area model)

  // --- masking AND gate -------------------------------------------------
  double gate_input_cap = 0.05;   ///< clock-input pin cap of the AND [pF]
  double gate_enable_cap = 0.05;  ///< enable-pin cap of the AND [pF]
  double gate_output_res = 30.0;  ///< driver resistance of the AND [ohm]
  double gate_delay = 10.0;       ///< intrinsic delay of the AND [ohm*pF]
  double gate_area = 800.0;       ///< cell area [lambda^2]

  // --- controller logic (2-input OR cells computing the enables) --------
  double or_gate_area = 400.0;    ///< 2-input OR cell area [lambda^2]
  double or_output_cap = 0.03;    ///< OR output net capacitance [pF]

  /// Buffers used by the baseline buffered tree are assumed to be half the
  /// size of the AND gates (paper section 5.1): half the input cap and area,
  /// twice the driver resistance.
  [[nodiscard]] double buffer_input_cap() const { return 0.5 * gate_input_cap; }
  [[nodiscard]] double buffer_output_res() const { return 2.0 * gate_output_res; }
  [[nodiscard]] double buffer_delay() const { return gate_delay; }
  [[nodiscard]] double buffer_area() const { return 0.5 * gate_area; }

  /// The electrical view of the buffered baseline tree: the inserted cells
  /// are half-size buffers, so the gate parameters seen by the merge,
  /// embedding and verification math are the buffer's.
  [[nodiscard]] TechParams as_buffered() const {
    TechParams b = *this;
    b.gate_input_cap = buffer_input_cap();
    b.gate_output_res = buffer_output_res();
    b.gate_delay = buffer_delay();
    b.gate_area = buffer_area();
    return b;
  }

  /// Capacitance of a wire of length `len` [pF].
  [[nodiscard]] double wire_cap(double len) const { return unit_cap * len; }
  /// Resistance of a wire of length `len` [ohm].
  [[nodiscard]] double wire_res(double len) const { return unit_res * len; }
  /// Area of a wire of length `len` [lambda^2].
  [[nodiscard]] double wire_area(double len) const { return wire_width * len; }
};

}  // namespace gcr::tech

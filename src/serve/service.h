#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/router.h"
#include "guard/status.h"
#include "io/reqs_io.h"
#include "serve/cache.h"

/// \file service.h
/// gcr::serve -- a long-lived, in-process batch routing service
/// (docs/serving.md). `BatchService` owns a bounded admission queue, a
/// fixed set of worker lanes and two content-hash caches; callers submit
/// `io::RouteRequest`s (usually parsed from a `.reqs` batch) and collect
/// `RequestOutcome`s.
///
/// The contract that makes it a *service* rather than a loop:
///
///   * Backpressure is explicit. The queue is bounded; when full, policy
///     `Shed` rejects the submission with GCR_E_OVERLOAD (recorded as a
///     normal outcome, counted in `serve.shed`), policy `Block` parks the
///     submitter until a slot frees. Nothing is ever dropped silently.
///   * Requests are isolated. Each runs under its own guard::Deadline;
///     parse errors, validation findings, injected faults, expiries and
///     unexpected exceptions all become a per-request outcome with a
///     stable GCR_E_* code. No request outcome -- including an internal
///     error -- stops the service from draining the rest of the batch.
///   * Intermediates are cached. Parsed designs plus their activity
///     engine are keyed by the content hash of the three input files;
///     finished route results by (design hash, option fingerprint) --
///     and per-request `threads` is deliberately *not* part of the
///     fingerprint, because results are bit-identical at every width
///     (docs/parallelism.md), so a warm hit is valid across widths.
///     Both caches are bounded with LRU eviction (GCR_W_CACHE_EVICT);
///     an entry implicated in an internal error is invalidated, never
///     re-served.
///   * Shutdown is graceful. `begin_drain()` stops admission (late
///     submissions shed), `drain()` completes every admitted request,
///     joins the lanes and emits a `serve.drain` event carrying
///     per-state counts.
///
/// Determinism: a request's routed tree depends only on its design and
/// options -- never on queue order, worker assignment, cache state or
/// the number of lanes -- so serving is bit-identical to one-shot
/// `gcr_route` runs of the same requests (the serve fault gate checks
/// this byte-for-byte).

namespace gcr::serve {

/// What to do with a submission when the admission queue is full.
enum class AdmitPolicy {
  Shed,   ///< reject now with GCR_E_OVERLOAD (bounded latency)
  Block,  ///< park the submitter until a slot frees (bounded memory)
};

struct ServeOptions {
  int workers{2};                   ///< request lanes (clamped to >= 1)
  std::size_t queue_capacity{64};   ///< admission queue bound (>= 1)
  AdmitPolicy policy{AdmitPolicy::Shed};
  std::size_t design_cache_capacity{32};  ///< parsed design + activity engine
  std::size_t result_cache_capacity{64};  ///< finished route results
  /// Budget for requests that do not carry their own deadline_ms.
  /// < 0 = unlimited.
  double default_deadline_ms{-1.0};
  /// Topology-build width for requests with threads=0. The serving
  /// default is 1: lanes give inter-request parallelism, and single-width
  /// routes keep the shared pool uncontended.
  int route_threads{1};
  std::string base_dir;  ///< resolve relative request paths against this
};

/// Terminal state of one request. Every admitted or shed request ends in
/// exactly one of these -- the service has no silent outcomes.
enum class RequestState {
  Done,     ///< routed; `result` holds the tree
  Shed,     ///< never admitted (queue full / draining / injected fault)
  Expired,  ///< deadline fired; partial work discarded
  Invalid,  ///< request's input files unreadable, unparsable or bad
  Error,    ///< internal failure confined to this request
};

[[nodiscard]] std::string_view state_name(RequestState s);

struct RequestOutcome {
  std::string id;         ///< request id from the batch file
  std::uint64_t seq{0};   ///< admission order (1-based, assigned at submit)
  RequestState state{RequestState::Error};
  guard::Code code{guard::Code::Ok};  ///< worst diagnostic (Ok when Done)
  std::string message;                ///< first error's message ("" if none)
  bool cache_hit{false};         ///< result came from the result cache
  bool design_cache_hit{false};  ///< design bundle came warm
  bool eco{false};               ///< request applied an ECO delta
  double elapsed_ms{0.0};        ///< wall time inside the worker lane
  /// The routed result (Done only). Shared with the result cache: a later
  /// eviction never invalidates an outcome already handed out.
  std::shared_ptr<const core::RouterResult> result;

  [[nodiscard]] bool ok() const { return state == RequestState::Done; }
  /// This request's exit code under the CLI contract (0/2/3/4).
  [[nodiscard]] int exit_code() const {
    return ok() ? guard::kExitOk : guard::exit_code_for(code);
  }
};

struct ServeStats {
  std::uint64_t submitted{0};
  std::uint64_t admitted{0};
  std::uint64_t done{0};
  std::uint64_t shed{0};
  std::uint64_t expired{0};
  std::uint64_t invalid{0};
  std::uint64_t errors{0};
  std::size_t queue_depth{0};
  std::size_t peak_queue_depth{0};
  CacheStats design_cache;
  CacheStats result_cache;
};

/// The service. Construct, start(), submit requests from any thread,
/// drain() exactly once when done (the destructor drains if the caller
/// forgot). Not copyable or movable -- lanes hold `this`.
class BatchService {
 public:
  explicit BatchService(ServeOptions opts);
  ~BatchService();
  BatchService(const BatchService&) = delete;
  BatchService& operator=(const BatchService&) = delete;

  [[nodiscard]] const ServeOptions& options() const { return opts_; }

  /// Spawn the worker lanes and open admission. Idempotent.
  void start();

  /// Submit one request. True when admitted; false when shed (the shed
  /// outcome is already recorded with GCR_E_OVERLOAD). Thread-safe.
  /// Submitting before start() is allowed -- requests queue (and shed at
  /// the bound) until the lanes come up. The `serve.enqueue` fault point
  /// fires here: an injected admission fault sheds the request exactly
  /// like a full queue.
  bool submit(io::RouteRequest req);

  /// Stop admitting; in-flight and queued requests still complete.
  /// Subsequent submissions shed. Wakes blocked (policy Block)
  /// submitters, which shed their request.
  void begin_drain();

  /// begin_drain(), run the queue dry, join the lanes, emit the
  /// `serve.drain` event with per-state counts. Idempotent.
  void drain();

  /// Block until the queue is empty and every lane is idle -- i.e. every
  /// request submitted so far has an outcome. Unlike drain(), admission
  /// stays open; the steady-state wait of a long-lived service.
  void wait_idle();

  /// All outcomes recorded so far, in completion order; clears the
  /// internal buffer (call after drain() for the full batch).
  [[nodiscard]] std::vector<RequestOutcome> take_outcomes();

  [[nodiscard]] ServeStats stats() const;

  /// Drop both caches (tests, explicit invalidation).
  void clear_caches();

 private:
  /// A parsed design plus the router (which owns the activity engine
  /// built from its instruction stream) -- the expensive intermediate
  /// the design cache amortizes. The router is not movable, hence the
  /// unique_ptr indirection under the shared cache handle.
  struct DesignBundle {
    std::unique_ptr<const core::GatedClockRouter> router;
    std::uint64_t content_hash{0};
  };

  struct Pending {
    std::uint64_t seq{0};
    io::RouteRequest req;
  };

  void worker_loop();
  [[nodiscard]] RequestOutcome process(const io::RouteRequest& req,
                                       std::uint64_t seq);
  void record(RequestOutcome out);
  [[nodiscard]] RequestOutcome make_shed(const io::RouteRequest& req,
                                         std::uint64_t seq,
                                         std::string why) const;

  [[nodiscard]] std::string resolve(const std::string& path) const;
  /// Read a whole file (through the `serve.read` fault point); false and
  /// a GCR_E_IO diagnostic when unreadable.
  [[nodiscard]] bool slurp(const std::string& path, std::string& text,
                           guard::Diag& diag) const;
  [[nodiscard]] std::shared_ptr<const DesignBundle> load_design(
      const io::RouteRequest& req, guard::Diag& diag, std::uint64_t* key,
      bool* cache_hit);

  ServeOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;  ///< workers park here
  std::condition_variable not_full_;   ///< Block-policy submitters park here
  std::condition_variable idle_;       ///< wait_idle() parks here
  std::deque<Pending> queue_;
  std::vector<std::thread> workers_;
  bool started_{false};
  bool draining_{false};
  int busy_{0};  ///< lanes currently processing a request
  std::uint64_t next_seq_{0};
  std::vector<RequestOutcome> outcomes_;

  // Counters (guarded by mu_); obs mirrors live under "serve.*".
  std::uint64_t submitted_{0};
  std::uint64_t admitted_{0};
  std::uint64_t done_{0};
  std::uint64_t shed_{0};
  std::uint64_t expired_{0};
  std::uint64_t invalid_{0};
  std::uint64_t errors_{0};
  std::size_t peak_depth_{0};

  LruCache<DesignBundle> design_cache_;
  LruCache<core::RouterResult> result_cache_;
};

}  // namespace gcr::serve

#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"

/// \file cache.h
/// Bounded content-hash caches for the serving layer (docs/serving.md).
/// The batch service keeps two of these: parsed designs + their activity
/// engine keyed by the content hash of the (sinks, rtl, stream) files,
/// and finished route results keyed by (design hash, option fingerprint).
/// Capacity is bounded with LRU eviction so a hostile or merely large
/// batch cannot turn the cache into a memory leak, and every entry can be
/// invalidated by key -- a poisoned intermediate is dropped, never
/// re-served to later requests.
///
/// Hit/miss/eviction counts are kept per cache and mirrored into
/// `gcr::obs` counters (`<name>.hits` / `.misses` / `.evictions`) when
/// metrics are enabled, so serve telemetry snapshots carry cache
/// effectiveness next to queue depth.

namespace gcr::serve {

/// FNV-1a over a byte range; the serving layer's content hash. Not
/// cryptographic -- it keys a cache, a collision costs correctness of
/// *reuse* only for adversarial inputs that also collide in length and
/// parse identically, which the per-request validation still bounds.
[[nodiscard]] inline std::uint64_t hash_bytes(std::string_view bytes,
                                              std::uint64_t seed = 0) {
  std::uint64_t h = 14695981039346656037ull ^ seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

[[nodiscard]] inline std::uint64_t hash_combine(std::uint64_t a,
                                                std::uint64_t b) {
  // splitmix64-style finalizer keeps combined keys well distributed.
  std::uint64_t x = a + 0x9e3779b97f4a7c15ull + (b << 6) + (b >> 2);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct CacheStats {
  std::uint64_t hits{0};
  std::uint64_t misses{0};
  std::uint64_t evictions{0};
  std::size_t entries{0};
  std::size_t capacity{0};
};

/// Thread-safe bounded LRU map from a 64-bit content key to a shared,
/// immutable value. Values are handed out as shared_ptr<const V>, so an
/// eviction or invalidation never invalidates a request mid-flight --
/// the entry just stops being findable.
template <typename V>
class LruCache {
 public:
  /// `name` prefixes the mirrored obs counters ("serve.design_cache").
  /// `capacity` 0 disables the cache entirely (every get misses, puts
  /// are dropped) -- the degraded mode for memory-constrained serving.
  LruCache(std::string name, std::size_t capacity)
      : name_(std::move(name)), capacity_(capacity) {}

  [[nodiscard]] std::shared_ptr<const V> get(std::uint64_t key) {
    const std::lock_guard<std::mutex> lk(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      bump("misses");
      return nullptr;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    bump("hits");
    return it->second->value;
  }

  /// Insert (or refresh) `key`. Returns true when a *different* entry was
  /// evicted to make room; `evicted_key` then names it so the caller can
  /// surface a GCR_W_CACHE_EVICT warning with the victim's identity.
  bool put(std::uint64_t key, std::shared_ptr<const V> value,
           std::uint64_t* evicted_key = nullptr) {
    if (capacity_ == 0) return false;
    const std::lock_guard<std::mutex> lk(mu_);
    if (const auto it = index_.find(key); it != index_.end()) {
      it->second->value = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return false;
    }
    order_.push_front(Entry{key, std::move(value)});
    index_[key] = order_.begin();
    if (index_.size() <= capacity_) return false;
    const Entry& victim = order_.back();
    if (evicted_key != nullptr) *evicted_key = victim.key;
    index_.erase(victim.key);
    order_.pop_back();
    ++evictions_;
    bump("evictions");
    return true;
  }

  /// Drop `key` if present (poisoned-entry recovery). True when dropped.
  bool invalidate(std::uint64_t key) {
    const std::lock_guard<std::mutex> lk(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void clear() {
    const std::lock_guard<std::mutex> lk(mu_);
    order_.clear();
    index_.clear();
  }

  [[nodiscard]] CacheStats stats() const {
    const std::lock_guard<std::mutex> lk(mu_);
    return CacheStats{hits_, misses_, evictions_, index_.size(), capacity_};
  }

 private:
  struct Entry {
    std::uint64_t key;
    std::shared_ptr<const V> value;
  };

  void bump(const char* what) {
    if (obs::metrics_enabled()) [[unlikely]]
      obs::Registry::global().counter(name_ + "." + what).inc();
  }

  std::string name_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> order_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, typename std::list<Entry>::iterator>
      index_;
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
  std::uint64_t evictions_{0};
};

}  // namespace gcr::serve

#include "serve/service.h"

#include <chrono>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "eco/incremental.h"
#include "guard/deadline.h"
#include "guard/fault.h"
#include "io/delta_io.h"
#include "io/text_io.h"
#include "log/logger.h"
#include "obs/metrics.h"

namespace gcr::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

void bump(const char* name, std::uint64_t n = 1) {
  if (obs::metrics_enabled()) [[unlikely]]
    obs::Registry::global().counter(name).inc(n);
}

void set_gauge(const char* name, double v) {
  if (obs::metrics_enabled()) [[unlikely]]
    obs::Registry::global().gauge(name).set(v);
}

/// Map the request's validated option strings onto RouterOptions. The
/// parser already rejected unknown members, so the fallthroughs are
/// defensive only (they keep the defaults).
core::RouterOptions make_router_options(const io::RouteRequest& req,
                                        int default_threads) {
  core::RouterOptions opts;
  if (req.style == "buffered") opts.style = core::TreeStyle::Buffered;
  else if (req.style == "gated") opts.style = core::TreeStyle::Gated;
  else if (req.style == "reduced") opts.style = core::TreeStyle::GatedReduced;
  if (req.topology == "swcap")
    opts.topology = core::TopologyScheme::MinSwitchedCap;
  else if (req.topology == "nn")
    opts.topology = core::TopologyScheme::NearestNeighbor;
  else if (req.topology == "activity")
    opts.topology = core::TopologyScheme::ActivityOnly;
  else if (req.topology == "mmm")
    opts.topology = core::TopologyScheme::Mmm;
  opts.auto_tune_reduction = req.auto_tune;
  if (req.strength)
    opts.reduction = gating::GateReductionParams::from_strength(*req.strength);
  opts.num_threads = req.threads > 0 ? req.threads : default_threads;
  return opts;
}

/// Result-cache fingerprint of everything that shapes the routed tree.
/// `threads` is excluded on purpose: results are bit-identical at every
/// width (docs/parallelism.md), so a warm entry is valid across widths.
std::uint64_t options_fingerprint(const io::RouteRequest& req) {
  std::uint64_t h = hash_bytes(req.style, 0x517);
  h = hash_combine(h, hash_bytes(req.topology, 0x709));
  std::uint64_t strength_bits = 0x5e111;  // sentinel: defaulted strength
  if (req.strength)
    std::memcpy(&strength_bits, &*req.strength, sizeof strength_bits);
  h = hash_combine(h, strength_bits);
  return hash_combine(h, req.auto_tune ? 0xa1 : 0xa0);
}

/// Derive the terminal state a failed run's worst diagnostic maps to.
RequestState state_for_code(guard::Code code, bool cancelled) {
  if (cancelled || code == guard::Code::Deadline) return RequestState::Expired;
  if (guard::exit_code_for(code) == guard::kExitInvalidInput)
    return RequestState::Invalid;
  return RequestState::Error;
}

void fail_from_diag(RequestOutcome& out, const guard::Diag& diag,
                    bool cancelled = false) {
  const guard::Status first = diag.first_error();
  out.code = first.is_ok() ? guard::Code::Internal : first.code;
  out.message = first.is_ok() ? "request failed without a diagnostic"
                              : first.to_string();
  out.state = state_for_code(out.code, cancelled);
}

}  // namespace

std::string_view state_name(RequestState s) {
  switch (s) {
    case RequestState::Done: return "done";
    case RequestState::Shed: return "shed";
    case RequestState::Expired: return "expired";
    case RequestState::Invalid: return "invalid";
    case RequestState::Error: return "error";
  }
  return "error";
}

BatchService::BatchService(ServeOptions opts)
    : opts_(std::move(opts)),
      design_cache_("serve.design_cache", opts_.design_cache_capacity),
      result_cache_("serve.result_cache", opts_.result_cache_capacity) {
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.queue_capacity < 1) opts_.queue_capacity = 1;
}

BatchService::~BatchService() { drain(); }

void BatchService::start() {
  const std::lock_guard<std::mutex> lk(mu_);
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  GCR_LOG_INFO("serve.start")
      .kv("workers", opts_.workers)
      .kv("queue_capacity", static_cast<std::uint64_t>(opts_.queue_capacity))
      .kv("policy", opts_.policy == AdmitPolicy::Shed ? "shed" : "block")
      .kv("design_cache",
          static_cast<std::uint64_t>(opts_.design_cache_capacity))
      .kv("result_cache",
          static_cast<std::uint64_t>(opts_.result_cache_capacity));
}

RequestOutcome BatchService::make_shed(const io::RouteRequest& req,
                                       std::uint64_t seq,
                                       std::string why) const {
  RequestOutcome out;
  out.id = req.id;
  out.seq = seq;
  out.state = RequestState::Shed;
  out.code = guard::Code::Overload;
  out.message = std::move(why);
  return out;
}

bool BatchService::submit(io::RouteRequest req) {
  RequestOutcome shed_out;
  bool shed = false;
  {
    std::unique_lock<std::mutex> lk(mu_);
    ++submitted_;
    const std::uint64_t seq = ++next_seq_;
    if (guard::fault_point("serve.enqueue")) {
      shed_out = make_shed(req, seq, "injected admission fault");
      shed = true;
    } else if (draining_) {
      shed_out = make_shed(req, seq, "service is not admitting (draining)");
      shed = true;
    } else if (queue_.size() >= opts_.queue_capacity) {
      if (opts_.policy == AdmitPolicy::Block) {
        not_full_.wait(lk, [&] {
          return queue_.size() < opts_.queue_capacity || draining_;
        });
        if (draining_) {
          shed_out = make_shed(req, seq, "service began draining while queued");
          shed = true;
        }
      } else {
        shed_out = make_shed(
            req, seq,
            "admission queue full (" + std::to_string(opts_.queue_capacity) +
                " pending), request shed");
        shed = true;
      }
    }
    if (!shed) {
      ++admitted_;
      queue_.push_back(Pending{seq, std::move(req)});
      peak_depth_ = std::max(peak_depth_, queue_.size());
      set_gauge("serve.queue_depth", static_cast<double>(queue_.size()));
    }
  }
  if (shed) {
    bump("serve.shed");
    GCR_LOG_WARN("serve.shed")
        .kv("id", shed_out.id)
        .kv("code", guard::code_name(guard::Code::Overload))
        .msg(shed_out.message);
    record(std::move(shed_out));
    return false;
  }
  bump("serve.admitted");
  not_empty_.notify_one();
  return true;
}

void BatchService::begin_drain() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    if (draining_) return;
    draining_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

void BatchService::drain() {
  begin_drain();
  std::vector<std::thread> lanes;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    lanes.swap(workers_);
  }
  if (lanes.empty()) return;  // already drained (or never started)
  for (std::thread& w : lanes) w.join();
  std::uint64_t done = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t invalid = 0;
  std::uint64_t errors = 0;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    done = done_;
    shed = shed_;
    expired = expired_;
    invalid = invalid_;
    errors = errors_;
  }
  GCR_LOG_INFO("serve.drain")
      .kv("done", done)
      .kv("shed", shed)
      .kv("expired", expired)
      .kv("invalid", invalid)
      .kv("errors", errors);
}

void BatchService::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_.wait(lk, [&] {
    return queue_.empty() && busy_ == 0;
  });
}

std::vector<RequestOutcome> BatchService::take_outcomes() {
  const std::lock_guard<std::mutex> lk(mu_);
  std::vector<RequestOutcome> out;
  out.swap(outcomes_);
  return out;
}

ServeStats BatchService::stats() const {
  ServeStats s;
  {
    const std::lock_guard<std::mutex> lk(mu_);
    s.submitted = submitted_;
    s.admitted = admitted_;
    s.done = done_;
    s.shed = shed_;
    s.expired = expired_;
    s.invalid = invalid_;
    s.errors = errors_;
    s.queue_depth = queue_.size();
    s.peak_queue_depth = peak_depth_;
  }
  s.design_cache = design_cache_.stats();
  s.result_cache = result_cache_.stats();
  return s;
}

void BatchService::clear_caches() {
  design_cache_.clear();
  result_cache_.clear();
}

void BatchService::record(RequestOutcome out) {
  GCR_LOG_EVENT(out.ok() ? log::Level::Info : log::Level::Warn,
                "serve.outcome")
      .kv("id", out.id)
      .kv("seq", out.seq)
      .kv("state", state_name(out.state))
      .kv("code", out.code == guard::Code::Ok
                      ? std::string_view("")
                      : guard::code_name(out.code))
      .kv("cache_hit", out.cache_hit)
      .kv("eco", out.eco)
      .kv("elapsed_ms", out.elapsed_ms);
  const std::lock_guard<std::mutex> lk(mu_);
  switch (out.state) {
    case RequestState::Done: ++done_; break;
    case RequestState::Shed: ++shed_; break;
    case RequestState::Expired: ++expired_; break;
    case RequestState::Invalid: ++invalid_; break;
    case RequestState::Error: ++errors_; break;
  }
  outcomes_.push_back(std::move(out));
}

void BatchService::worker_loop() {
  for (;;) {
    Pending p;
    {
      std::unique_lock<std::mutex> lk(mu_);
      not_empty_.wait(lk, [&] { return !queue_.empty() || draining_; });
      if (queue_.empty()) return;  // draining and dry
      p = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
      set_gauge("serve.queue_depth", static_cast<double>(queue_.size()));
    }
    not_full_.notify_one();
    record(process(p.req, p.seq));
    {
      const std::lock_guard<std::mutex> lk(mu_);
      --busy_;
      if (busy_ == 0 && queue_.empty()) idle_.notify_all();
    }
  }
}

std::string BatchService::resolve(const std::string& path) const {
  if (opts_.base_dir.empty()) return path;
  const std::filesystem::path p(path);
  if (p.is_absolute()) return path;
  return (std::filesystem::path(opts_.base_dir) / p).string();
}

bool BatchService::slurp(const std::string& path, std::string& text,
                         guard::Diag& diag) const {
  const std::string full = resolve(path);
  std::ifstream is(full, std::ios::binary);
  if (!is || guard::fault_point("serve.read")) {
    diag.error(guard::Code::Io, "cannot read '" + full + "'");
    return false;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  if (is.bad()) {
    diag.error(guard::Code::Io, "read failed on '" + full + "'");
    return false;
  }
  text = ss.str();
  return true;
}

std::shared_ptr<const BatchService::DesignBundle> BatchService::load_design(
    const io::RouteRequest& req, guard::Diag& diag, std::uint64_t* key,
    bool* cache_hit) {
  std::string sinks_text;
  std::string rtl_text;
  std::string stream_text;
  if (!slurp(req.sinks, sinks_text, diag)) return nullptr;
  if (!slurp(req.rtl, rtl_text, diag)) return nullptr;
  if (!slurp(req.stream, stream_text, diag)) return nullptr;
  const std::uint64_t h =
      hash_combine(hash_combine(hash_bytes(sinks_text, 1),
                                hash_bytes(rtl_text, 2)),
                   hash_bytes(stream_text, 3));
  *key = h;
  if (std::shared_ptr<const DesignBundle> cached = design_cache_.get(h)) {
    *cache_hit = true;
    return cached;
  }
  std::istringstream sinks_is(sinks_text);
  std::istringstream rtl_is(rtl_text);
  std::istringstream stream_is(stream_text);
  const std::optional<io::SinksFile> sinks =
      io::read_sinks(sinks_is, diag, req.sinks);
  const std::optional<activity::RtlDescription> rtl =
      io::read_rtl(rtl_is, diag, req.rtl);
  const std::optional<activity::InstructionStream> stream =
      io::read_stream(stream_is, diag, req.stream);
  if (!sinks || !rtl || !stream) return nullptr;
  core::Design d{sinks->die, sinks->sinks, *rtl, *stream, /*sink_module=*/{}};
  auto bundle = std::make_shared<DesignBundle>();
  bundle->router = std::make_unique<core::GatedClockRouter>(std::move(d));
  bundle->content_hash = h;
  std::uint64_t victim = 0;
  if (design_cache_.put(h, bundle, &victim)) {
    GCR_LOG_WARN("serve.cache_evict")
        .kv("cache", "design")
        .kv("key", victim)
        .kv("code", guard::code_name(guard::Code::CacheEvict));
  }
  return bundle;
}

RequestOutcome BatchService::process(const io::RouteRequest& req,
                                     std::uint64_t seq) {
  RequestOutcome out;
  out.id = req.id;
  out.seq = seq;
  const Clock::time_point t0 = Clock::now();
  const double budget =
      req.deadline_ms >= 0.0 ? req.deadline_ms : opts_.default_deadline_ms;
  const guard::Deadline deadline = budget >= 0.0
                                       ? guard::Deadline::after_ms(budget)
                                       : guard::Deadline();
  std::uint64_t design_key = 0;
  try {
    const guard::DeadlineScope scope(deadline);
    // A request that aged past its budget while queued dies here, before
    // any file I/O -- queue time counts against the deadline.
    guard::poll_deadline("serve.dequeue");
    guard::Diag diag;
    const std::shared_ptr<const DesignBundle> bundle =
        load_design(req, diag, &design_key, &out.design_cache_hit);
    if (bundle == nullptr) {
      fail_from_diag(out, diag);
      out.elapsed_ms = ms_since(t0);
      return out;
    }
    const core::RouterOptions ropts =
        make_router_options(req, opts_.route_threads);
    const std::uint64_t base_key =
        hash_combine(design_key, options_fingerprint(req));

    // Base route: warm from the result cache or computed and cached.
    std::shared_ptr<const core::RouterResult> base = result_cache_.get(base_key);
    if (base == nullptr) {
      core::RouteOutcome ro = bundle->router->route_guarded(ropts, deadline);
      if (!ro.ok()) {
        fail_from_diag(out, ro.diag, ro.cancelled);
        if (out.state == RequestState::Error) design_cache_.invalidate(design_key);
        out.elapsed_ms = ms_since(t0);
        return out;
      }
      base = std::make_shared<const core::RouterResult>(std::move(*ro.result));
      std::uint64_t victim = 0;
      if (result_cache_.put(base_key, base, &victim)) {
        GCR_LOG_WARN("serve.cache_evict")
            .kv("cache", "result")
            .kv("key", victim)
            .kv("code", guard::code_name(guard::Code::CacheEvict));
      }
    } else if (req.eco.empty()) {
      out.cache_hit = true;
    }

    if (req.eco.empty()) {
      out.result = base;
      out.state = RequestState::Done;
      out.elapsed_ms = ms_since(t0);
      return out;
    }

    // ECO request: incremental re-route on top of the (cached) base.
    out.eco = true;
    std::string delta_text;
    if (!slurp(req.eco, delta_text, diag)) {
      fail_from_diag(out, diag);
      out.elapsed_ms = ms_since(t0);
      return out;
    }
    const std::uint64_t eco_key =
        hash_combine(base_key, hash_bytes(delta_text, 4));
    if (std::shared_ptr<const core::RouterResult> cached =
            result_cache_.get(eco_key)) {
      out.result = cached;
      out.cache_hit = true;
      out.state = RequestState::Done;
      out.elapsed_ms = ms_since(t0);
      return out;
    }
    std::istringstream delta_is(delta_text);
    const std::optional<eco::DesignDelta> delta =
        io::read_delta(delta_is, diag, req.eco);
    if (!delta) {
      fail_from_diag(out, diag);
      out.elapsed_ms = ms_since(t0);
      return out;
    }
    core::RouteOutcome ro = eco::route_incremental(*bundle->router, *base,
                                                   *delta, ropts,
                                                   /*info=*/nullptr, deadline);
    if (!ro.ok()) {
      fail_from_diag(out, ro.diag, ro.cancelled);
      if (out.state == RequestState::Error) design_cache_.invalidate(design_key);
      out.elapsed_ms = ms_since(t0);
      return out;
    }
    const auto result =
        std::make_shared<const core::RouterResult>(std::move(*ro.result));
    std::uint64_t victim = 0;
    if (result_cache_.put(eco_key, result, &victim)) {
      GCR_LOG_WARN("serve.cache_evict")
          .kv("cache", "result")
          .kv("key", victim)
          .kv("code", guard::code_name(guard::Code::CacheEvict));
    }
    out.result = result;
    out.state = RequestState::Done;
  } catch (const guard::CancelledError& e) {
    out.state = RequestState::Expired;
    out.code = guard::Code::Deadline;
    out.message = e.status().message;
  } catch (const guard::GuardError& e) {
    out.code = e.status().code;
    out.message = e.status().message;
    out.state = state_for_code(out.code, /*cancelled=*/false);
    if (out.state == RequestState::Error && design_key != 0)
      design_cache_.invalidate(design_key);
  } catch (const std::exception& e) {
    // Anything else -- bad_alloc, a rejecting self-check, a logic error --
    // is confined to this request; a design-level intermediate that was
    // live when it happened is dropped as potentially poisoned.
    out.state = RequestState::Error;
    out.code = guard::Code::Internal;
    out.message = e.what();
    if (design_key != 0) design_cache_.invalidate(design_key);
  }
  out.elapsed_ms = ms_since(t0);
  return out;
}

}  // namespace gcr::serve

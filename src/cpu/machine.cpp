#include "cpu/machine.h"

#include <cassert>

namespace gcr::cpu {

Machine::Machine() : mem_(kMemWords, 0) {}

void Machine::reset() {
  regs_.fill(0);
  std::fill(mem_.begin(), mem_.end(), 0);
}

Trace Machine::run(const Program& prog, long long max_cycles) {
  Trace trace;
  long long pc = 0;
  const long long n = static_cast<long long>(prog.code.size());
  while (trace.cycles < max_cycles) {
    if (pc < 0 || pc >= n) break;  // fell off the program: stop
    const Instr& in = prog.code[static_cast<std::size_t>(pc)];
    ++trace.cycles;
    trace.ops.push_back(in.op);
    regs_[0] = 0;

    const auto mem_addr = [&](long long base) {
      const long long a = base + in.imm;
      assert(a >= 0 && a < static_cast<long long>(kMemWords));
      return static_cast<std::size_t>(a);
    };

    long long next_pc = pc + 1;
    switch (in.op) {
      case Opcode::kAdd: regs_[in.rd] = regs_[in.rs1] + regs_[in.rs2]; break;
      case Opcode::kSub: regs_[in.rd] = regs_[in.rs1] - regs_[in.rs2]; break;
      case Opcode::kAnd: regs_[in.rd] = regs_[in.rs1] & regs_[in.rs2]; break;
      case Opcode::kOr: regs_[in.rd] = regs_[in.rs1] | regs_[in.rs2]; break;
      case Opcode::kXor: regs_[in.rd] = regs_[in.rs1] ^ regs_[in.rs2]; break;
      case Opcode::kShl:
        regs_[in.rd] = regs_[in.rs1] << (in.imm & 63);
        break;
      case Opcode::kShr:
        regs_[in.rd] = regs_[in.rs1] >> (in.imm & 63);
        break;
      case Opcode::kMul: regs_[in.rd] = regs_[in.rs1] * regs_[in.rs2]; break;
      case Opcode::kDiv:
        regs_[in.rd] = regs_[in.rs2] == 0 ? 0 : regs_[in.rs1] / regs_[in.rs2];
        break;
      case Opcode::kLi: regs_[in.rd] = in.imm; break;
      case Opcode::kAddi: regs_[in.rd] = regs_[in.rs1] + in.imm; break;
      case Opcode::kLd: regs_[in.rd] = mem_[mem_addr(regs_[in.rs1])]; break;
      case Opcode::kSt: mem_[mem_addr(regs_[in.rs1])] = regs_[in.rs2]; break;
      case Opcode::kBeq:
        if (regs_[in.rs1] == regs_[in.rs2]) next_pc = in.imm;
        break;
      case Opcode::kBne:
        if (regs_[in.rs1] != regs_[in.rs2]) next_pc = in.imm;
        break;
      case Opcode::kBlt:
        if (regs_[in.rs1] < regs_[in.rs2]) next_pc = in.imm;
        break;
      case Opcode::kJmp: next_pc = in.imm; break;
      case Opcode::kNop: break;
      case Opcode::kHalt: trace.halted = true; return trace;
      case Opcode::kCount: assert(false); break;
    }
    regs_[0] = 0;
    pc = next_pc;
  }
  return trace;
}

}  // namespace gcr::cpu

#pragma once

#include <span>
#include <vector>

#include "activity/rtl.h"
#include "activity/stream.h"
#include "clocktree/sink.h"
#include "cpu/program.h"
#include "geom/die.h"

/// \file bridge.h
/// Bridge from the toy processor to the clock router's activity engine:
///
///   * a *floorplan* assigns every clock sink to a functional unit (units
///     occupy spatially contiguous regions, their areas proportional to
///     configurable weights), so each architectural unit is implemented by
///     a group of placed module instances;
///   * the ISA decode table expands to the RTL description over *sinks*
///     (opcode uses sink s iff s's unit is clocked by that opcode);
///   * executed traces become the instruction stream (instruction classes
///     = opcodes, K = kNumOpcodes).

namespace gcr::cpu {

struct UnitFloorplan {
  std::vector<int> unit_of_sink;            ///< sink -> unit index
  std::vector<std::vector<int>> unit_sinks; ///< unit -> its sinks

  [[nodiscard]] int num_sinks() const {
    return static_cast<int>(unit_of_sink.size());
  }
};

/// Default relative silicon weights of the units (fetch/decode/datapath
/// larger than single-purpose blocks).
[[nodiscard]] std::span<const double> default_unit_weights();

/// Assign sinks to units in spatially contiguous bands, areas proportional
/// to `weights` (defaults when empty).
[[nodiscard]] UnitFloorplan assign_units(std::span<const ct::Sink> sinks,
                                         std::span<const double> weights = {});

/// The RTL description over sinks induced by the ISA decode table and the
/// floorplan.
[[nodiscard]] activity::RtlDescription make_rtl(const UnitFloorplan& plan);

/// The instruction stream of one executed trace.
[[nodiscard]] activity::InstructionStream make_stream(const Trace& trace);

/// Run the standard benchmark kernels round-robin (with seeded data
/// memory) until at least `target_cycles` cycles are traced; concatenated
/// stream.
[[nodiscard]] activity::InstructionStream multiprogram_stream(
    long long target_cycles);

/// Run a single program with seeded data memory.
[[nodiscard]] Trace run_with_data(const Program& prog,
                                  long long max_cycles = 1'000'000);

}  // namespace gcr::cpu

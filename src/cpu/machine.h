#pragma once

#include <array>
#include <vector>

#include "cpu/isa.h"

/// \file machine.h
/// A cycle-per-instruction interpreter of the toy ISA. Running a program
/// yields the instruction trace (one opcode per cycle) that drives the
/// activity analysis -- the "instruction level simulation" of paper
/// section 3.2.

namespace gcr::cpu {

struct Program {
  std::vector<Instr> code;
};

struct Trace {
  std::vector<Opcode> ops;   ///< executed opcode per cycle
  bool halted{false};        ///< reached kHalt (vs. cycle limit)
  long long cycles{0};
};

class Machine {
 public:
  static constexpr int kNumRegs = 32;
  static constexpr std::size_t kMemWords = 1 << 16;

  Machine();

  /// Reset registers, memory and pc.
  void reset();

  [[nodiscard]] long long reg(int r) const { return regs_.at(r); }
  void set_reg(int r, long long v) { regs_.at(r) = v; }
  [[nodiscard]] long long mem(std::size_t addr) const { return mem_.at(addr); }
  void set_mem(std::size_t addr, long long v) { mem_.at(addr) = v; }

  /// Execute `prog` from pc 0 for at most `max_cycles`, recording the
  /// per-cycle opcode trace. Register 0 is hard-wired to zero.
  Trace run(const Program& prog, long long max_cycles = 1'000'000);

 private:
  std::array<long long, kNumRegs> regs_{};
  std::vector<long long> mem_;
};

}  // namespace gcr::cpu

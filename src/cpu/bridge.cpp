#include "cpu/bridge.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <numeric>

namespace gcr::cpu {

namespace {

constexpr std::array<double, kNumUnits> kDefaultWeights = {
    2.0,  // Fetch
    2.0,  // Decode
    1.5,  // RegRead
    1.5,  // RegWrite
    2.0,  // Alu
    1.0,  // Shifter
    2.0,  // Multiplier
    1.5,  // Divider
    2.0,  // LoadStore
    1.0,  // Branch
    1.0,  // Immediate
};

/// Seed the first 4096 data words deterministically (sort/dot/memcpy
/// inputs).
void seed_memory(Machine& m) {
  std::uint64_t x = 0x2545f4914f6cdd1dull;
  for (std::size_t a = 0; a < 4096; ++a) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    m.set_mem(a, static_cast<long long>(x % 100000));
  }
}

}  // namespace

std::span<const double> default_unit_weights() { return kDefaultWeights; }

UnitFloorplan assign_units(std::span<const ct::Sink> sinks,
                           std::span<const double> weights) {
  assert(!sinks.empty());
  if (weights.empty()) weights = kDefaultWeights;
  assert(static_cast<int>(weights.size()) == kNumUnits);
  const int n = static_cast<int>(sinks.size());

  // Boustrophedon order: vertical bands by x, alternating y direction, so
  // consecutive ranks are spatial neighbors and each unit gets one
  // contiguous region.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  double xlo = 1e300, xhi = -1e300;
  for (const auto& s : sinks) {
    xlo = std::min(xlo, s.loc.x);
    xhi = std::max(xhi, s.loc.x);
  }
  const int bands = std::max(1, static_cast<int>(std::sqrt(n / 4.0)));
  const double bw = std::max(1e-9, (xhi - xlo) / bands);
  const auto band_of = [&](int i) {
    return std::min(bands - 1, static_cast<int>(
                                   (sinks[static_cast<std::size_t>(i)].loc.x -
                                    xlo) / bw));
  };
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int ba = band_of(a);
    const int bb = band_of(b);
    if (ba != bb) return ba < bb;
    const double ya = sinks[static_cast<std::size_t>(a)].loc.y;
    const double yb = sinks[static_cast<std::size_t>(b)].loc.y;
    return (ba % 2 == 0) ? ya < yb : ya > yb;
  });

  // Contiguous chunks with sizes proportional to the unit weights.
  const double total_w = std::accumulate(weights.begin(), weights.end(), 0.0);
  UnitFloorplan plan;
  plan.unit_of_sink.assign(static_cast<std::size_t>(n), kNumUnits - 1);
  plan.unit_sinks.assign(static_cast<std::size_t>(kNumUnits), {});
  int next = 0;
  double acc = 0.0;
  for (int u = 0; u < kNumUnits; ++u) {
    acc += weights[static_cast<std::size_t>(u)];
    const int end =
        (u == kNumUnits - 1)
            ? n
            : std::min(n, static_cast<int>(std::lround(acc / total_w * n)));
    for (; next < end; ++next) {
      const int s = order[static_cast<std::size_t>(next)];
      plan.unit_of_sink[static_cast<std::size_t>(s)] = u;
      plan.unit_sinks[static_cast<std::size_t>(u)].push_back(s);
    }
  }
  return plan;
}

activity::RtlDescription make_rtl(const UnitFloorplan& plan) {
  activity::RtlDescription rtl(kNumOpcodes, plan.num_sinks());
  for (int op = 0; op < kNumOpcodes; ++op) {
    for (const Unit u : units_of(static_cast<Opcode>(op))) {
      for (const int s :
           plan.unit_sinks[static_cast<std::size_t>(static_cast<int>(u))]) {
        rtl.add_use(op, s);
      }
    }
  }
  return rtl;
}

activity::InstructionStream make_stream(const Trace& trace) {
  activity::InstructionStream s;
  s.seq.reserve(trace.ops.size());
  for (const Opcode op : trace.ops) s.seq.push_back(static_cast<int>(op));
  return s;
}

Trace run_with_data(const Program& prog, long long max_cycles) {
  Machine m;
  seed_memory(m);
  return m.run(prog, max_cycles);
}

activity::InstructionStream multiprogram_stream(long long target_cycles) {
  const std::vector<NamedProgram> kernels = benchmark_kernels();
  activity::InstructionStream out;
  std::size_t k = 0;
  while (static_cast<long long>(out.seq.size()) < target_cycles) {
    const Trace t = run_with_data(kernels[k % kernels.size()].prog);
    for (const Opcode op : t.ops) out.seq.push_back(static_cast<int>(op));
    ++k;
  }
  out.seq.resize(static_cast<std::size_t>(target_cycles));
  return out;
}

}  // namespace gcr::cpu

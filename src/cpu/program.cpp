#include "cpu/program.h"

#include <stdexcept>

namespace gcr::cpu {

Assembler& Assembler::label(const std::string& name) {
  labels_[name] = static_cast<long long>(prog_.code.size());
  return *this;
}

Assembler& Assembler::op3(Opcode op, int rd, int rs1, int rs2) {
  prog_.code.push_back({op, rd, rs1, rs2, 0});
  return *this;
}

Assembler& Assembler::shl(int rd, int rs1, long long imm) {
  prog_.code.push_back({Opcode::kShl, rd, rs1, 0, imm});
  return *this;
}

Assembler& Assembler::shr(int rd, int rs1, long long imm) {
  prog_.code.push_back({Opcode::kShr, rd, rs1, 0, imm});
  return *this;
}

Assembler& Assembler::li(int rd, long long imm) {
  prog_.code.push_back({Opcode::kLi, rd, 0, 0, imm});
  return *this;
}

Assembler& Assembler::addi(int rd, int rs1, long long imm) {
  prog_.code.push_back({Opcode::kAddi, rd, rs1, 0, imm});
  return *this;
}

Assembler& Assembler::ld(int rd, int rs1, long long imm) {
  prog_.code.push_back({Opcode::kLd, rd, rs1, 0, imm});
  return *this;
}

Assembler& Assembler::st(int rs1, int rs2, long long imm) {
  prog_.code.push_back({Opcode::kSt, 0, rs1, rs2, imm});
  return *this;
}

Assembler& Assembler::branch(Opcode op, int rs1, int rs2,
                             const std::string& target) {
  fixups_.emplace_back(prog_.code.size(), target);
  prog_.code.push_back({op, 0, rs1, rs2, -1});
  return *this;
}

Assembler& Assembler::beq(int rs1, int rs2, const std::string& t) {
  return branch(Opcode::kBeq, rs1, rs2, t);
}
Assembler& Assembler::bne(int rs1, int rs2, const std::string& t) {
  return branch(Opcode::kBne, rs1, rs2, t);
}
Assembler& Assembler::blt(int rs1, int rs2, const std::string& t) {
  return branch(Opcode::kBlt, rs1, rs2, t);
}
Assembler& Assembler::jmp(const std::string& t) {
  return branch(Opcode::kJmp, 0, 0, t);
}

Assembler& Assembler::nop() {
  prog_.code.push_back({Opcode::kNop, 0, 0, 0, 0});
  return *this;
}

Assembler& Assembler::halt() {
  prog_.code.push_back({Opcode::kHalt, 0, 0, 0, 0});
  return *this;
}

Program Assembler::finish() {
  for (const auto& [pos, name] : fixups_) {
    const auto it = labels_.find(name);
    if (it == labels_.end())
      throw std::runtime_error("undefined label: " + name);
    prog_.code[pos].imm = it->second;
  }
  return std::move(prog_);
}

Program prog_fibonacci(int n) {
  Assembler a;
  // r1 = i, r2 = fib(i-1), r3 = fib(i), r4 = n, r5 = tmp
  a.li(2, 0).li(3, 1).li(1, 1).li(4, n);
  a.label("loop");
  a.beq(1, 4, "done");
  a.add(5, 2, 3);   // tmp = a + b
  a.add(2, 3, 0);   // a = b
  a.add(3, 5, 0);   // b = tmp
  a.addi(1, 1, 1);  // ++i
  a.jmp("loop");
  a.label("done").halt();
  return a.finish();
}

Program prog_memcpy(int words) {
  Assembler a;
  // r1 = src index, r2 = dst base, r3 = limit, r4 = data
  a.li(1, 0).li(2, 4096).li(3, words);
  a.label("loop");
  a.beq(1, 3, "done");
  a.ld(4, 1, 0);
  a.add(5, 2, 1);
  a.st(5, 4, 0);
  a.addi(1, 1, 1);
  a.jmp("loop");
  a.label("done").halt();
  return a.finish();
}

Program prog_dot_product(int n) {
  Assembler a;
  // r1 = i, r2 = n, r7 = acc
  a.li(1, 0).li(2, n).li(7, 0);
  a.label("loop");
  a.beq(1, 2, "done");
  a.ld(3, 1, 0);        // x[i]
  a.ld(4, 1, 4096);     // y[i]
  a.mul(5, 3, 4);
  a.add(7, 7, 5);
  a.addi(1, 1, 1);
  a.jmp("loop");
  a.label("done").halt();
  return a.finish();
}

Program prog_bubble_sort(int n) {
  Assembler a;
  // r1 = i (outer), r2 = j (inner), r3 = n-1, r4/r5 = elems, r6 = j+1
  a.li(1, 0).li(3, n - 1);
  a.label("outer");
  a.beq(1, 3, "done");
  a.li(2, 0);
  a.label("inner");
  a.beq(2, 3, "next_outer");
  a.ld(4, 2, 0);
  a.addi(6, 2, 1);
  a.ld(5, 6, 0);
  a.blt(4, 5, "no_swap");
  a.st(2, 5, 0);
  a.st(6, 4, 0);
  a.label("no_swap");
  a.addi(2, 2, 1);
  a.jmp("inner");
  a.label("next_outer");
  a.addi(1, 1, 1);
  a.jmp("outer");
  a.label("done").halt();
  return a.finish();
}

Program prog_hash_mix(int iters) {
  Assembler a;
  // r1 = i, r2 = iters, r3 = state, r4/r5 = scratch
  a.li(1, 0).li(2, iters).li(3, 0x9e3779b9LL).li(6, 1013904223LL);
  a.label("loop");
  a.beq(1, 2, "done");
  a.shl(4, 3, 13);
  a.xor_(3, 3, 4);
  a.shr(5, 3, 7);
  a.xor_(3, 3, 5);
  a.mul(3, 3, 6);
  a.addi(4, 1, 17);
  a.div(5, 3, 4);
  a.xor_(3, 3, 5);
  a.addi(1, 1, 1);
  a.jmp("loop");
  a.label("done").halt();
  return a.finish();
}

std::vector<NamedProgram> benchmark_kernels() {
  std::vector<NamedProgram> out;
  out.push_back({"fibonacci", prog_fibonacci(400)});
  out.push_back({"memcpy", prog_memcpy(400)});
  out.push_back({"dot_product", prog_dot_product(300)});
  out.push_back({"bubble_sort", prog_bubble_sort(40)});
  out.push_back({"hash_mix", prog_hash_mix(250)});
  return out;
}

}  // namespace gcr::cpu

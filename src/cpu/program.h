#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cpu/machine.h"

/// \file program.h
/// A tiny assembler (labels + fixups) and the benchmark kernels whose
/// traces drive the activity analysis -- the "number of benchmark
/// programs" of paper section 3.2. The kernels are chosen for diverse
/// functional-unit profiles: ALU-bound, memory-bound, multiplier-bound and
/// control-bound.

namespace gcr::cpu {

class Assembler {
 public:
  /// Define a label at the current position.
  Assembler& label(const std::string& name);

  Assembler& add(int rd, int rs1, int rs2) { return op3(Opcode::kAdd, rd, rs1, rs2); }
  Assembler& sub(int rd, int rs1, int rs2) { return op3(Opcode::kSub, rd, rs1, rs2); }
  Assembler& and_(int rd, int rs1, int rs2) { return op3(Opcode::kAnd, rd, rs1, rs2); }
  Assembler& or_(int rd, int rs1, int rs2) { return op3(Opcode::kOr, rd, rs1, rs2); }
  Assembler& xor_(int rd, int rs1, int rs2) { return op3(Opcode::kXor, rd, rs1, rs2); }
  Assembler& mul(int rd, int rs1, int rs2) { return op3(Opcode::kMul, rd, rs1, rs2); }
  Assembler& div(int rd, int rs1, int rs2) { return op3(Opcode::kDiv, rd, rs1, rs2); }
  Assembler& shl(int rd, int rs1, long long imm);
  Assembler& shr(int rd, int rs1, long long imm);
  Assembler& li(int rd, long long imm);
  Assembler& addi(int rd, int rs1, long long imm);
  Assembler& ld(int rd, int rs1, long long imm);
  Assembler& st(int rs1, int rs2, long long imm);  ///< mem[rs1+imm] = rs2
  Assembler& beq(int rs1, int rs2, const std::string& target);
  Assembler& bne(int rs1, int rs2, const std::string& target);
  Assembler& blt(int rs1, int rs2, const std::string& target);
  Assembler& jmp(const std::string& target);
  Assembler& nop();
  Assembler& halt();

  /// Resolve label fixups and return the program. Throws on an undefined
  /// label.
  [[nodiscard]] Program finish();

 private:
  Assembler& op3(Opcode op, int rd, int rs1, int rs2);
  Assembler& branch(Opcode op, int rs1, int rs2, const std::string& target);

  Program prog_;
  std::map<std::string, long long> labels_;
  std::vector<std::pair<std::size_t, std::string>> fixups_;
};

/// Iterative Fibonacci; result fib(n) ends in r3.
[[nodiscard]] Program prog_fibonacci(int n);
/// Copy `words` memory words from address 0 to address 4096.
[[nodiscard]] Program prog_memcpy(int words);
/// Dot product of two length-n vectors at 0 and 4096; result in r7.
[[nodiscard]] Program prog_dot_product(int n);
/// Bubble sort of n words at address 0 (control/branch heavy).
[[nodiscard]] Program prog_bubble_sort(int n);
/// Hash-style mixing loop (shift/xor/div heavy).
[[nodiscard]] Program prog_hash_mix(int iters);

/// All kernels with human-readable names (for sweeps over programs).
struct NamedProgram {
  std::string name;
  Program prog;
};
[[nodiscard]] std::vector<NamedProgram> benchmark_kernels();

}  // namespace gcr::cpu

#include "cpu/isa.h"

#include <array>

namespace gcr::cpu {

namespace {

using U = Unit;

// Shorthand: every instruction clocks fetch + decode; register operands
// clock the file's read/write ports; the executing unit is per-opcode.
constexpr std::array kAdd = {U::Fetch, U::Decode, U::RegRead, U::RegWrite,
                             U::Alu};
constexpr std::array kLogic = {U::Fetch, U::Decode, U::RegRead, U::RegWrite,
                               U::Alu};
constexpr std::array kShift = {U::Fetch, U::Decode, U::RegRead, U::RegWrite,
                               U::Shifter, U::Immediate};
constexpr std::array kMul = {U::Fetch, U::Decode, U::RegRead, U::RegWrite,
                             U::Multiplier};
constexpr std::array kDiv = {U::Fetch, U::Decode, U::RegRead, U::RegWrite,
                             U::Divider};
constexpr std::array kLi = {U::Fetch, U::Decode, U::RegWrite, U::Immediate};
constexpr std::array kAddi = {U::Fetch, U::Decode, U::RegRead, U::RegWrite,
                              U::Alu, U::Immediate};
constexpr std::array kLd = {U::Fetch, U::Decode, U::RegRead, U::RegWrite,
                            U::LoadStore, U::Immediate};
constexpr std::array kSt = {U::Fetch, U::Decode, U::RegRead, U::LoadStore,
                            U::Immediate};
constexpr std::array kBr = {U::Fetch, U::Decode, U::RegRead, U::Branch,
                            U::Immediate};
constexpr std::array kJmp = {U::Fetch, U::Decode, U::Branch, U::Immediate};
constexpr std::array kNop = {U::Fetch, U::Decode};

}  // namespace

std::string_view unit_name(Unit u) {
  switch (u) {
    case Unit::Fetch: return "fetch";
    case Unit::Decode: return "decode";
    case Unit::RegRead: return "regread";
    case Unit::RegWrite: return "regwrite";
    case Unit::Alu: return "alu";
    case Unit::Shifter: return "shifter";
    case Unit::Multiplier: return "multiplier";
    case Unit::Divider: return "divider";
    case Unit::LoadStore: return "loadstore";
    case Unit::Branch: return "branch";
    case Unit::Immediate: return "immediate";
    case Unit::kCount: break;
  }
  return "?";
}

std::string_view opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kLi: return "li";
    case Opcode::kAddi: return "addi";
    case Opcode::kLd: return "ld";
    case Opcode::kSt: return "st";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kJmp: return "jmp";
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kCount: break;
  }
  return "?";
}

std::span<const Unit> units_of(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub: return kAdd;
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor: return kLogic;
    case Opcode::kShl:
    case Opcode::kShr: return kShift;
    case Opcode::kMul: return kMul;
    case Opcode::kDiv: return kDiv;
    case Opcode::kLi: return kLi;
    case Opcode::kAddi: return kAddi;
    case Opcode::kLd: return kLd;
    case Opcode::kSt: return kSt;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt: return kBr;
    case Opcode::kJmp: return kJmp;
    case Opcode::kNop:
    case Opcode::kHalt:
    case Opcode::kCount: break;
  }
  return kNop;
}

}  // namespace gcr::cpu

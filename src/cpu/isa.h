#pragma once

#include <span>
#include <string_view>

/// \file isa.h
/// Instruction set of the toy microprocessor used to generate *real*
/// instruction-level traces (paper section 3: the activity statistics come
/// from "instruction level simulation of the processor with a number of
/// benchmark programs" plus "knowledge about the RTL description").
///
/// The ISA is a small load/store RISC; each opcode exercises a fixed set of
/// functional units -- that mapping *is* the RTL description of Table 1.

namespace gcr::cpu {

/// Functional units (architectural modules) of the processor.
enum class Unit : int {
  Fetch = 0,
  Decode,
  RegRead,
  RegWrite,
  Alu,
  Shifter,
  Multiplier,
  Divider,
  LoadStore,
  Branch,
  Immediate,
  kCount,
};

inline constexpr int kNumUnits = static_cast<int>(Unit::kCount);

[[nodiscard]] std::string_view unit_name(Unit u);

enum class Opcode : int {
  kAdd = 0,  ///< rd = rs1 + rs2
  kSub,      ///< rd = rs1 - rs2
  kAnd,      ///< rd = rs1 & rs2
  kOr,       ///< rd = rs1 | rs2
  kXor,      ///< rd = rs1 ^ rs2
  kShl,      ///< rd = rs1 << imm
  kShr,      ///< rd = rs1 >> imm
  kMul,      ///< rd = rs1 * rs2
  kDiv,      ///< rd = rs1 / rs2 (0 on divide-by-zero)
  kLi,       ///< rd = imm
  kAddi,     ///< rd = rs1 + imm
  kLd,       ///< rd = mem[rs1 + imm]
  kSt,       ///< mem[rs1 + imm] = rs2
  kBeq,      ///< if rs1 == rs2 jump to imm
  kBne,      ///< if rs1 != rs2 jump to imm
  kBlt,      ///< if rs1 <  rs2 jump to imm
  kJmp,      ///< jump to imm
  kNop,      ///< idle cycle (only fetch/decode clock)
  kHalt,     ///< stop simulation
  kCount,
};

inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kCount);

[[nodiscard]] std::string_view opcode_name(Opcode op);

/// The functional units opcode `op` clocks while executing -- the RTL
/// description row for this instruction class.
[[nodiscard]] std::span<const Unit> units_of(Opcode op);

struct Instr {
  Opcode op{Opcode::kNop};
  int rd{0};
  int rs1{0};
  int rs2{0};
  long long imm{0};
};

}  // namespace gcr::cpu

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/json.h"
#include "prof/hwcounters.h"
#include "prof/sampler.h"

/// \file report.h
/// The `gcr.profile_report` v1 sidecar: everything gcr::prof measured
/// about one run, in one schema-validated JSON document.
///
/// Layout (version 1):
///   schema            "gcr.profile_report"
///   version           1
///   tool              producing tool, e.g. "gcr_route" or "gcr_bench/route"
///   sampler           { interval_us, ticks, torn,
///                       profile: [ {phase, self, total} ... ] }  // self desc
///   hw                "perf_event" | "unavailable"
///   hw_counters       [ 4 slot names ]  // meaning depends on `hw`
///   pool              { workers: [ {busy_ns, idle_ns, chunks} ... ],
///                       jobs, dispatch_overhead_ns }
///   phases            obs phase forest (with per-phase "hw" objects when
///                     counters were attached)  -- optional
///   counters/gauges/histograms                 -- metrics snapshot
///
/// `"hw": "unavailable"` is the explicit fallback marker: the hw_counters
/// slots then hold rusage deltas, not PMU counts. Consumers must branch on
/// it rather than comparing rusage numbers against cycle counts.
///
/// `validate_profile_report` is wired into `gcr_benchdiff --validate`,
/// which dispatches on the document's "schema" field, so bench and profile
/// sidecars ride the same CI validation leg.

namespace gcr::obs {
class Session;
}  // namespace gcr::obs

namespace gcr::prof {

inline constexpr int kProfileReportVersion = 1;

struct ProfileReportOptions {
  std::string tool;                          ///< e.g. "gcr_route"
  const Sampler::Profile* profile{nullptr};  ///< nullptr: sampler not run
  const obs::Session* session{nullptr};      ///< nullptr: omit phase forest
  HwInfo hw;  ///< from enable_hw_counters()
};

void write_profile_report(std::ostream& os, const ProfileReportOptions& opts);

/// Shape-check a parsed profile report; one human-readable problem per
/// violation, empty when valid (same contract as validate_bench_report).
[[nodiscard]] std::vector<std::string> validate_profile_report(
    const obs::json::Value& doc);

}  // namespace gcr::prof

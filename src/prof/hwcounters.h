#pragma once

#include <array>

/// \file hwcounters.h
/// Per-phase hardware counters for gcr::prof.
///
/// `enable_hw_counters()` installs an `obs::HwSamplerFn`, after which every
/// ScopedTimer deltas four cumulative per-thread counters across its phase
/// and credits them to the `PhaseStats` node (reports label them with the
/// names below). Two sources, chosen once at enable time:
///
///   * `perf_event` -- a perf_event_open counter group per sampling thread
///     (cycles, instructions, cache misses, branch misses). Requires a
///     Linux kernel that permits the syscall for unprivileged processes;
///     typical CI containers do not (seccomp / perf_event_paranoid), which
///     is why the fallback exists rather than being an error.
///   * `rusage` -- getrusage(RUSAGE_THREAD) deltas (user/system cpu time,
///     minor faults, context switches). Always available; reports mark the
///     run `"hw": "unavailable"` so consumers know these are not PMU
///     counts.
///
/// `GCR_PROF_NO_HW=1` forces the rusage path (tested in prof_test, and
/// useful for comparing runs across machines with different PMUs).

namespace gcr::prof {

struct HwInfo {
  bool perf_event{false};  ///< true when real PMU counters are live
  const char* source{"none"};  ///< "perf_event" | "rusage" | "none"
  std::array<const char*, 4> names{{"", "", "", ""}};
};

/// Probe the best available source on the calling thread, install the obs
/// hw sampler accordingly, and return the active configuration.
/// Idempotent; toggle only from quiescent points (see obs/timer.h).
HwInfo enable_hw_counters();

/// Uninstall the sampler and close any per-thread perf fds owned by the
/// calling thread (other threads' fds close lazily on their next use or at
/// thread exit).
void disable_hw_counters();

/// The configuration from the last enable_hw_counters() call.
[[nodiscard]] HwInfo hw_info();

}  // namespace gcr::prof

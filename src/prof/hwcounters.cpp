#include "prof/hwcounters.h"

#include <cstdlib>
#include <cstring>

#include "obs/timer.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif
#include <sys/resource.h>

namespace gcr::prof {

namespace {

constexpr std::array<const char*, 4> kPerfNames = {
    "cycles", "instructions", "cache_misses", "branch_misses"};
constexpr std::array<const char*, 4> kRusageNames = {
    "cpu_user_ns", "cpu_sys_ns", "minor_faults", "ctx_switches"};

HwInfo g_info;

#if defined(__linux__)

bool fallback_forced() {
  const char* env = std::getenv("GCR_PROF_NO_HW");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

/// One counter group per sampling thread, opened lazily the first time the
/// sampler runs there (perf fds are per-thread; a single probe cannot
/// serve the pool workers). Closed by the thread_local destructor.
struct PerfGroup {
  int fds[4] = {-1, -1, -1, -1};
  bool tried = false;
  bool ok = false;

  ~PerfGroup() { close_all(); }

  void close_all() {
    for (int& fd : fds) {
      if (fd >= 0) close(fd);
      fd = -1;
    }
    ok = false;
  }

  void reset() {
    close_all();
    tried = false;
  }

  void open_group() {
    tried = true;
    static constexpr std::uint64_t kConfigs[4] = {
        PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
        PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};
    for (int i = 0; i < 4; ++i) {
      perf_event_attr attr{};
      attr.size = sizeof attr;
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = kConfigs[i];
      attr.read_format = PERF_FORMAT_GROUP;
      attr.exclude_kernel = 1;
      attr.exclude_hv = 1;
      const long fd =
          syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                  /*group_fd=*/i == 0 ? -1 : fds[0], /*flags=*/0UL);
      if (fd < 0) {
        close_all();
        return;
      }
      fds[i] = static_cast<int>(fd);
    }
    ok = true;
  }
};

thread_local PerfGroup t_group;

obs::HwSample perf_sample() {
  PerfGroup& g = t_group;
  if (!g.tried) g.open_group();
  obs::HwSample s;
  if (!g.ok) return s;  // zeros: this thread's PMU slice is unavailable
  struct {
    std::uint64_t nr;
    std::uint64_t values[8];
  } buf{};
  const ssize_t n = read(g.fds[0], &buf, sizeof buf);
  if (n > 0 && buf.nr >= 4)
    for (int i = 0; i < 4; ++i)
      s.v[static_cast<std::size_t>(i)] = buf.values[i];
  return s;
}

#endif  // __linux__

std::uint64_t timeval_ns(const timeval& tv) {
  return static_cast<std::uint64_t>(tv.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(tv.tv_usec) * 1000ull;
}

obs::HwSample rusage_sample() {
  obs::HwSample s;
  rusage ru{};
#if defined(RUSAGE_THREAD)
  if (getrusage(RUSAGE_THREAD, &ru) != 0) return s;
#else
  if (getrusage(RUSAGE_SELF, &ru) != 0) return s;
#endif
  s.v[0] = timeval_ns(ru.ru_utime);
  s.v[1] = timeval_ns(ru.ru_stime);
  s.v[2] = static_cast<std::uint64_t>(ru.ru_minflt);
  s.v[3] = static_cast<std::uint64_t>(ru.ru_nvcsw + ru.ru_nivcsw);
  return s;
}

}  // namespace

HwInfo enable_hw_counters() {
  HwInfo info;
#if defined(__linux__)
  if (!fallback_forced()) {
    t_group.reset();
    t_group.open_group();
    if (t_group.ok) {
      info.perf_event = true;
      info.source = "perf_event";
      info.names = kPerfNames;
      obs::set_hw_sampler(&perf_sample, info.names);
    }
  }
#endif
  if (!info.perf_event) {
    info.source = "rusage";
    info.names = kRusageNames;
    obs::set_hw_sampler(&rusage_sample, info.names);
  }
  g_info = info;
  return info;
}

void disable_hw_counters() {
  obs::set_hw_sampler(nullptr, g_info.names);
#if defined(__linux__)
  t_group.reset();
#endif
}

HwInfo hw_info() { return g_info; }

}  // namespace gcr::prof

#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

/// \file flightrec.h
/// gcr::prof -- lock-free per-thread flight recorder.
///
/// Every thread that emits an event owns a bounded ring buffer holding the
/// *last N* events it recorded (older events are overwritten, never
/// blocked on). Recording is a handful of relaxed stores plus one steady
/// clock read, cheap enough to stay **default-on**: phase transitions,
/// greedy merges, deadline polls and fault-injector hits are always being
/// written, so when a run crashes, blows its deadline or exits non-zero,
/// `gcr::guard` can dump a replayable tail of what each thread was doing
/// (see guard/postmortem.h). `GCR_FLIGHTREC=0` disables recording.
///
/// This translation unit is dependency-free on purpose -- it sits *below*
/// `obs` and `guard` in the link graph so both layers (and `cts`) can
/// record into it without cycles. The JSON dump is hand-rolled for the
/// same reason, and `write_flight_record_fd` avoids the C++ iostream /
/// allocation machinery so a crashing signal handler can call it.

namespace gcr::prof {

enum class Ev : std::uint8_t {
  PhaseEnter,       ///< ScopedTimer opened a phase (what = phase name)
  PhaseExit,        ///< ScopedTimer closed a phase
  Merge,            ///< greedy merge committed (a, b = node ids, x = cost)
  DeadlinePoll,     ///< poll_deadline under a limited deadline (what = site)
  DeadlineExpired,  ///< the poll that threw CancelledError
  FaultHit,         ///< fault injector fired (what = site)
  Mark,             ///< free-form marker
};

[[nodiscard]] const char* ev_name(Ev kind);

/// One recorded event. `what` is a truncated copy, not a pointer, so the
/// recorder never dangles into dynamically built phase names.
struct Event {
  std::uint64_t id{0};     ///< per-thread monotonic sequence number, from 1
  std::uint64_t ts_ns{0};  ///< steady-clock nanoseconds since process start
  std::int64_t a{0};
  std::int64_t b{0};
  double x{0.0};
  Ev kind{Ev::Mark};
  char what[23]{};
};

/// Ring capacity per thread (power of two; last-N semantics).
inline constexpr std::uint32_t kRingCapacity = 256;

/// Default-on; `GCR_FLIGHTREC=0` in the environment starts it disabled.
[[nodiscard]] bool recorder_enabled();
void set_recorder_enabled(bool on);

/// Record one event into the calling thread's ring (no-op when disabled).
void record(Ev kind, const char* what, std::int64_t a = 0, std::int64_t b = 0,
            double x = 0.0);

/// The tail retained for one thread, oldest event first.
struct ThreadTail {
  std::uint64_t thread_ordinal{0};  ///< registration order, from 0
  bool retired{false};              ///< the owning thread has exited
  std::uint64_t recorded{0};        ///< events ever recorded by the thread
  std::uint64_t dropped{0};         ///< overwritten (recorded - retained)
  std::vector<Event> events;
};

/// Snapshot every registered ring. Safe and exact for threads that are
/// quiescent or joined; best-effort for threads still recording (a slot
/// being overwritten during the copy may read torn -- acceptable for a
/// post-mortem artifact).
[[nodiscard]] std::vector<ThreadTail> snapshot_rings();

/// Total events recorded process-wide (sum over rings, including retired).
[[nodiscard]] std::uint64_t total_recorded();

/// Dump all rings as a `gcr.flight_record` v1 JSON document.
void write_flight_record(std::ostream& os);

/// Signal-safe variant: formats with snprintf onto the stack and write(2)s
/// straight to `fd`. Used by the guard crash handler.
void write_flight_record_fd(int fd);

}  // namespace gcr::prof

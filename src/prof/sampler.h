#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

/// \file sampler.h
/// Interval sampling profiler keyed to the obs phase tree.
///
/// A dedicated sampler thread wakes on a fixed POSIX monotonic-clock
/// interval (clock_nanosleep with TIMER_ABSTIME, so tick times do not
/// drift) and snapshots every thread's lock-free `obs::PhaseShadow` --
/// the published copy of that thread's open ScopedTimer phases. Each
/// stable snapshot credits:
///
///   * `self`  +1 to the innermost open phase,
///   * `total` +1 to every distinct phase name on the stack.
///
/// The result is a flat self/total profile keyed to the same phase names
/// as `PhaseStats`, i.e. "where was the time actually spent" at a
/// granularity the phase tree's wall-clock totals cannot give (a phase
/// that is open 95% of ticks but `self` on 5% is delegating its time to
/// children or worker chunks). Overhead on the profiled threads is two
/// relaxed atomic bumps plus a bounded name copy per ScopedTimer -- the
/// route bench group stays within the 2% gate CI enforces.
///
/// Snapshots torn by a concurrent push/pop are discarded and counted in
/// `Profile::torn`; sampling is statistical, a lost tick is not an error.

namespace gcr::prof {

class Sampler {
 public:
  struct Options {
    /// Tick period (>= 50 enforced). The GCR_PROF_INTERVAL_US environment
    /// variable overrides this at start() -- the escape hatch for sampling
    /// runs much shorter than the 1 kHz default can resolve.
    int interval_us{1000};
  };

  struct Entry {
    std::string phase;
    std::uint64_t self{0};
    std::uint64_t total{0};
  };

  struct Profile {
    int interval_us{0};
    std::uint64_t ticks{0};  ///< sampling ticks taken
    std::uint64_t torn{0};   ///< per-thread snapshots discarded as torn
    std::vector<Entry> entries;  ///< sorted by self desc, then name
  };

  Sampler();
  ~Sampler();  ///< stops implicitly if still running
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Enable shadow publishing and launch the sampler thread. No-op when
  /// already running.
  void start(const Options& opts);
  void start() { start(Options{}); }

  /// Join the sampler thread, disable shadow publishing, and return the
  /// accumulated profile. Returns an empty profile if never started.
  Profile stop();

  [[nodiscard]] bool running() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gcr::prof

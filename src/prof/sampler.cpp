#include "prof/sampler.h"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <string_view>
#include <thread>
#include <utility>

#include "obs/phasestack.h"

namespace gcr::prof {

namespace {

struct Tally {
  std::uint64_t self{0};
  std::uint64_t total{0};
};

timespec add_us(timespec t, long us) {
  t.tv_nsec += us * 1000L;
  while (t.tv_nsec >= 1000000000L) {
    t.tv_nsec -= 1000000000L;
    t.tv_sec += 1;
  }
  return t;
}

}  // namespace

struct Sampler::Impl {
  std::thread thread;
  std::atomic<bool> stop{false};
  bool running{false};
  Options opts;

  // Owned by the sampler thread while running; read after join.
  std::map<std::string, Tally> tallies;
  std::uint64_t ticks{0};
  std::uint64_t torn{0};

  void loop() {
    timespec next{};
    clock_gettime(CLOCK_MONOTONIC, &next);
    std::vector<std::string> stack;
    std::vector<std::string_view> seen;
    while (!stop.load(std::memory_order_acquire)) {
      next = add_us(next, opts.interval_us);
      while (clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &next, nullptr) ==
             EINTR) {
      }
      if (stop.load(std::memory_order_acquire)) break;
      ++ticks;
      for (const obs::PhaseShadow* shadow : obs::shadow_threads()) {
        if (shadow->retired.load(std::memory_order_acquire)) continue;
        if (!shadow->snapshot(stack)) {
          ++torn;
          continue;
        }
        if (stack.empty()) continue;
        tallies[stack.back()].self += 1;
        // `total` counts each *distinct* name once per snapshot so a
        // re-entered phase (auto-tune's embed loop) is not double-counted.
        seen.clear();
        for (const std::string& name : stack) {
          if (std::find(seen.begin(), seen.end(), std::string_view(name)) !=
              seen.end())
            continue;
          seen.push_back(name);
          tallies[name].total += 1;
        }
      }
    }
  }
};

Sampler::Sampler() : impl_(std::make_unique<Impl>()) {}

Sampler::~Sampler() {
  if (impl_->running) stop();
}

bool Sampler::running() const { return impl_->running; }

void Sampler::start(const Options& opts) {
  if (impl_->running) return;
  impl_->opts = opts;
  // GCR_PROF_INTERVAL_US overrides the caller's interval: the CLIs expose
  // no flag for it, and sub-10ms runs (the demo design) need a finer tick
  // than the 1 kHz default to land any samples at all.
  if (const char* env = std::getenv("GCR_PROF_INTERVAL_US")) {
    const int v = std::atoi(env);
    if (v > 0) impl_->opts.interval_us = v;
  }
  impl_->opts.interval_us = std::max(50, impl_->opts.interval_us);
  impl_->stop.store(false, std::memory_order_release);
  impl_->tallies.clear();
  impl_->ticks = 0;
  impl_->torn = 0;
  obs::set_shadow_enabled(true);
  impl_->thread = std::thread([this] { impl_->loop(); });
  impl_->running = true;
}

Sampler::Profile Sampler::stop() {
  Profile p;
  if (!impl_->running) return p;
  impl_->stop.store(true, std::memory_order_release);
  impl_->thread.join();
  impl_->running = false;
  obs::set_shadow_enabled(false);
  p.interval_us = impl_->opts.interval_us;
  p.ticks = impl_->ticks;
  p.torn = impl_->torn;
  p.entries.reserve(impl_->tallies.size());
  for (const auto& [phase, tally] : impl_->tallies) {
    Entry e;
    e.phase = phase;
    e.self = tally.self;
    e.total = tally.total;
    p.entries.push_back(std::move(e));
  }
  std::sort(p.entries.begin(), p.entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.self != b.self) return a.self > b.self;
              return a.phase < b.phase;
            });
  return p;
}

}  // namespace gcr::prof

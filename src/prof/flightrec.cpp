#include "prof/flightrec.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <ostream>
#include <string>

namespace gcr::prof {

namespace {

std::uint64_t mono_ns() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

/// One per thread, leaked on purpose: a retired thread's tail must survive
/// until the post-mortem dump, and the registry holds raw pointers.
struct Ring {
  std::uint64_t thread_ordinal{0};
  std::atomic<std::uint64_t> head{0};  ///< events ever recorded
  std::atomic<bool> retired{false};
  Event slots[kRingCapacity];
};

std::mutex g_registry_mu;
std::vector<Ring*>& registry() {
  static std::vector<Ring*>* v = new std::vector<Ring*>();
  return *v;
}

Ring* register_ring() {
  Ring* r = new Ring();
  const std::lock_guard<std::mutex> lk(g_registry_mu);
  r->thread_ordinal = registry().size();
  registry().push_back(r);
  return r;
}

/// Thread-local handle; marks the ring retired when the thread exits.
struct RingTls {
  Ring* ring = register_ring();
  ~RingTls() { ring->retired.store(true, std::memory_order_release); }
};

Ring& thread_ring() {
  thread_local RingTls tls;
  return *tls.ring;
}

std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("GCR_FLIGHTREC");
  return !(env && env[0] == '0' && env[1] == '\0');
}()};

}  // namespace

const char* ev_name(Ev kind) {
  switch (kind) {
    case Ev::PhaseEnter: return "phase_enter";
    case Ev::PhaseExit: return "phase_exit";
    case Ev::Merge: return "merge";
    case Ev::DeadlinePoll: return "deadline_poll";
    case Ev::DeadlineExpired: return "deadline_expired";
    case Ev::FaultHit: return "fault_hit";
    case Ev::Mark: return "mark";
  }
  return "unknown";
}

bool recorder_enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_recorder_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void record(Ev kind, const char* what, std::int64_t a, std::int64_t b,
            double x) {
  if (!recorder_enabled()) return;
  Ring& r = thread_ring();
  const std::uint64_t h = r.head.load(std::memory_order_relaxed);
  Event& e = r.slots[h % kRingCapacity];
  e.id = h + 1;
  e.ts_ns = mono_ns();
  e.kind = kind;
  e.a = a;
  e.b = b;
  e.x = x;
  std::size_t i = 0;
  if (what != nullptr)
    for (; i + 1 < sizeof e.what && what[i] != '\0'; ++i) e.what[i] = what[i];
  e.what[i] = '\0';
  // Release-publish so a cross-thread snapshot that observes the new head
  // also observes the slot contents (same-thread dumps need no ordering).
  r.head.store(h + 1, std::memory_order_release);
}

std::vector<ThreadTail> snapshot_rings() {
  std::vector<Ring*> rings;
  {
    const std::lock_guard<std::mutex> lk(g_registry_mu);
    rings = registry();
  }
  std::vector<ThreadTail> out;
  out.reserve(rings.size());
  for (Ring* r : rings) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    ThreadTail t;
    t.thread_ordinal = r->thread_ordinal;
    t.retired = r->retired.load(std::memory_order_acquire);
    t.recorded = head;
    const std::uint64_t n = head < kRingCapacity ? head : kRingCapacity;
    t.dropped = head - n;
    t.events.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = head - n; i < head; ++i)
      t.events.push_back(r->slots[i % kRingCapacity]);
    out.push_back(std::move(t));
  }
  return out;
}

std::uint64_t total_recorded() {
  const std::lock_guard<std::mutex> lk(g_registry_mu);
  std::uint64_t sum = 0;
  for (const Ring* r : registry())
    sum += r->head.load(std::memory_order_relaxed);
  return sum;
}

namespace {

/// `what` holds identifier-ish names, but escape defensively anyway.
void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
}

void format_event(std::string& out, const Event& e) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"id\":%llu,\"ts_ns\":%llu,\"kind\":\"%s\",\"what\":\"",
                static_cast<unsigned long long>(e.id),
                static_cast<unsigned long long>(e.ts_ns), ev_name(e.kind));
  out += buf;
  append_escaped(out, e.what);
  std::snprintf(buf, sizeof buf, "\",\"a\":%lld,\"b\":%lld,\"x\":%.17g}",
                static_cast<long long>(e.a), static_cast<long long>(e.b), e.x);
  out += buf;
}

}  // namespace

void write_flight_record(std::ostream& os) {
  const std::vector<ThreadTail> tails = snapshot_rings();
  std::string out;
  out += "{\"schema\":\"gcr.flight_record\",\"version\":1";
  char buf[96];
  std::uint64_t recorded = 0;
  for (const ThreadTail& t : tails) recorded += t.recorded;
  std::snprintf(buf, sizeof buf, ",\"events_recorded\":%llu,\"threads\":[",
                static_cast<unsigned long long>(recorded));
  out += buf;
  bool first_thread = true;
  for (const ThreadTail& t : tails) {
    if (t.recorded == 0) continue;  // never-recording threads add no signal
    if (!first_thread) out += ',';
    first_thread = false;
    std::snprintf(buf, sizeof buf,
                  "{\"thread\":%llu,\"retired\":%s,\"dropped\":%llu,"
                  "\"events\":[",
                  static_cast<unsigned long long>(t.thread_ordinal),
                  t.retired ? "true" : "false",
                  static_cast<unsigned long long>(t.dropped));
    out += buf;
    for (std::size_t i = 0; i < t.events.size(); ++i) {
      if (i > 0) out += ',';
      format_event(out, t.events[i]);
    }
    out += "]}";
  }
  out += "]}\n";
  os << out;
}

void write_flight_record_fd(int fd) {
  // Crash path: no allocation, no locks beyond the atomics. Walks the
  // registry without its mutex -- the vector only ever grows, and a torn
  // tail entry merely truncates the dump.
  char buf[512];
  int n = std::snprintf(buf, sizeof buf,
                        "{\"schema\":\"gcr.flight_record\",\"version\":1,"
                        "\"crash\":true,\"threads\":[");
  (void)!write(fd, buf, static_cast<std::size_t>(n));
  // Registry pointer is stable (leaked heap vector); size read racily.
  std::vector<Ring*>& regs = registry();
  const std::size_t count = regs.size();
  bool first_thread = true;
  for (std::size_t ri = 0; ri < count; ++ri) {
    Ring* r = regs[ri];
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    if (head == 0) continue;
    const std::uint64_t tail_n = head < kRingCapacity ? head : kRingCapacity;
    n = std::snprintf(buf, sizeof buf, "%s{\"thread\":%llu,\"events\":[",
                      first_thread ? "" : ",",
                      static_cast<unsigned long long>(r->thread_ordinal));
    (void)!write(fd, buf, static_cast<std::size_t>(n));
    first_thread = false;
    for (std::uint64_t i = head - tail_n; i < head; ++i) {
      const Event& e = r->slots[i % kRingCapacity];
      n = std::snprintf(buf, sizeof buf,
                        "%s{\"id\":%llu,\"ts_ns\":%llu,\"kind\":\"%s\","
                        "\"what\":\"%.22s\",\"a\":%lld,\"b\":%lld,\"x\":%.17g}",
                        i == head - tail_n ? "" : ",",
                        static_cast<unsigned long long>(e.id),
                        static_cast<unsigned long long>(e.ts_ns),
                        ev_name(e.kind), e.what, static_cast<long long>(e.a),
                        static_cast<long long>(e.b), e.x);
      (void)!write(fd, buf, static_cast<std::size_t>(n));
    }
    (void)!write(fd, "]}", 2);
  }
  (void)!write(fd, "]}\n", 3);
}

}  // namespace gcr::prof

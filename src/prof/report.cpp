#include "prof/report.h"

#include <ostream>
#include <string_view>

#include "obs/report_util.h"
#include "obs/session.h"
#include "par/pool.h"

namespace gcr::prof {

namespace {

using obs::json::Value;

void require(std::vector<std::string>& problems, bool ok, const char* what) {
  if (!ok) problems.emplace_back(what);
}

bool is_number_field(const Value& obj, std::string_view key) {
  const Value* v = obj.find(key);
  return v && v->is_number();
}

}  // namespace

void write_profile_report(std::ostream& os, const ProfileReportOptions& opts) {
  obs::json::Writer w(os);
  w.begin_object();
  w.field("schema", "gcr.profile_report");
  w.field("version", kProfileReportVersion);
  w.field("tool", opts.tool);
  w.key("generated").begin_object();
  w.field("timestamp_utc", obs::utc_timestamp());
  w.field("hostname", obs::host_name());
  w.end_object();

  w.key("sampler").begin_object();
  if (opts.profile != nullptr) {
    w.field("interval_us", opts.profile->interval_us);
    w.field("ticks", opts.profile->ticks);
    w.field("torn", opts.profile->torn);
    w.key("profile").begin_array();
    for (const Sampler::Entry& e : opts.profile->entries) {
      w.begin_object();
      w.field("phase", e.phase);
      w.field("self", e.self);
      w.field("total", e.total);
      w.end_object();
    }
    w.end_array();
  } else {
    w.field("interval_us", 0);
    w.field("ticks", std::uint64_t{0});
    w.field("torn", std::uint64_t{0});
    w.key("profile").begin_array().end_array();
  }
  w.end_object();

  // The explicit fallback marker: consumers must not read rusage deltas as
  // PMU counts (see report.h).
  w.field("hw", opts.hw.perf_event ? "perf_event" : "unavailable");
  w.field("hw_source", opts.hw.source);
  w.key("hw_counters").begin_array();
  for (const char* name : opts.hw.names) w.value(name);
  w.end_array();

  const par::PoolTelemetry t = par::ThreadPool::global().telemetry();
  w.key("pool").begin_object();
  w.key("workers").begin_array();
  for (const par::PoolTelemetry::Worker& worker : t.workers) {
    w.begin_object();
    w.field("busy_ns", worker.busy_ns);
    w.field("idle_ns", worker.idle_ns);
    w.field("chunks", worker.chunks);
    w.end_object();
  }
  w.end_array();
  w.field("jobs", t.jobs);
  w.field("dispatch_overhead_ns", t.dispatch_overhead_ns);
  w.end_object();

  if (opts.session != nullptr) obs::write_phase_forest(w, *opts.session);
  obs::write_metrics(w);
  w.end_object();
  os << '\n';
}

std::vector<std::string> validate_profile_report(const Value& doc) {
  std::vector<std::string> problems;
  if (!doc.is_object()) {
    problems.emplace_back("document is not a JSON object");
    return problems;
  }
  const Value* schema = doc.find("schema");
  require(problems, schema && schema->is_string() &&
                        schema->as_string() == "gcr.profile_report",
          "schema != \"gcr.profile_report\"");
  const Value* version = doc.find("version");
  require(problems,
          version && version->is_number() &&
              static_cast<int>(version->as_number()) == kProfileReportVersion,
          "version != 1");
  const Value* tool = doc.find("tool");
  require(problems, tool && tool->is_string() && !tool->as_string().empty(),
          "missing tool name");
  // Provenance stamp arrived in a later revision: optional, type-checked
  // when present so old reports stay valid.
  const Value* generated = doc.find("generated");
  if (generated) {
    if (generated->is_object()) {
      for (const char* key : {"timestamp_utc", "hostname"}) {
        const Value* g = generated->find(key);
        if (g && !g->is_string())
          problems.push_back(std::string("generated.") + key +
                             " is not a string");
      }
    } else {
      problems.emplace_back("generated is not an object");
    }
  }

  const Value* sampler = doc.find("sampler");
  if (sampler && sampler->is_object()) {
    require(problems, is_number_field(*sampler, "interval_us"),
            "sampler.interval_us missing");
    require(problems, is_number_field(*sampler, "ticks"),
            "sampler.ticks missing");
    require(problems, is_number_field(*sampler, "torn"),
            "sampler.torn missing");
    const Value* profile = sampler->find("profile");
    if (profile && profile->is_array()) {
      int idx = 0;
      for (const Value& e : profile->as_array()) {
        const std::string at = "sampler.profile[" + std::to_string(idx++) + "]";
        if (!e.is_object()) {
          problems.push_back(at + " is not an object");
          continue;
        }
        const Value* phase = e.find("phase");
        if (!phase || !phase->is_string() || phase->as_string().empty())
          problems.push_back(at + ".phase missing or empty");
        if (!is_number_field(e, "self"))
          problems.push_back(at + ".self missing");
        if (!is_number_field(e, "total"))
          problems.push_back(at + ".total missing");
      }
    } else {
      problems.emplace_back("missing sampler.profile array");
    }
  } else {
    problems.emplace_back("missing sampler object");
  }

  const Value* hw = doc.find("hw");
  require(problems,
          hw && hw->is_string() &&
              (hw->as_string() == "perf_event" ||
               hw->as_string() == "unavailable"),
          "hw must be \"perf_event\" or \"unavailable\"");
  const Value* hw_counters = doc.find("hw_counters");
  if (hw_counters && hw_counters->is_array()) {
    require(problems, hw_counters->as_array().size() == 4,
            "hw_counters must have 4 slots");
    for (const Value& n : hw_counters->as_array())
      if (!n.is_string()) {
        problems.emplace_back("hw_counters entries must be strings");
        break;
      }
  } else {
    problems.emplace_back("missing hw_counters array");
  }

  const Value* pool = doc.find("pool");
  if (pool && pool->is_object()) {
    require(problems, is_number_field(*pool, "jobs"), "pool.jobs missing");
    require(problems, is_number_field(*pool, "dispatch_overhead_ns"),
            "pool.dispatch_overhead_ns missing");
    const Value* workers = pool->find("workers");
    if (workers && workers->is_array()) {
      int idx = 0;
      for (const Value& worker : workers->as_array()) {
        const std::string at = "pool.workers[" + std::to_string(idx++) + "]";
        if (!worker.is_object()) {
          problems.push_back(at + " is not an object");
          continue;
        }
        for (const char* key : {"busy_ns", "idle_ns", "chunks"})
          if (!is_number_field(worker, key))
            problems.push_back(at + "." + key + " missing");
      }
    } else {
      problems.emplace_back("missing pool.workers array");
    }
  } else {
    problems.emplace_back("missing pool object");
  }

  const Value* counters = doc.find("counters");
  require(problems, counters && counters->is_object(),
          "missing counters object");
  return problems;
}

}  // namespace gcr::prof

#include "gating/gate_reduction.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/timer.h"

namespace gcr::gating {

GateReductionParams GateReductionParams::from_strength(double s) {
  GateReductionParams p;
  if (s <= 0.0) {
    // Keep every gate: no rule can fire.
    p.theta_activity = 1.5;
    p.theta_swcap = 0.0;
    p.theta_parent = -1.0;
    p.force_cap_multiple = 20.0;
    return p;
  }
  p.theta_activity = 1.02 - 0.9 * s * s;  // s=1 spares only near-idle nodes
  p.theta_swcap = 0.08 * s * s * s;       // [pF]
  p.theta_parent = 0.35 * s * s;          // activity-difference tolerance
  p.force_cap_multiple = 20.0 + 600.0 * s * s;  // relax the delay guard
  return p;
}

namespace {

/// Shared single ascending pass. `in_cone`/`prev_gated` are null for the
/// full reduction; when set, out-of-cone nodes copy prev_gated and skip
/// the rules (the acc[] state is still maintained for them, so in-cone
/// parents see the same accumulated-capacitance inputs a full pass would).
std::vector<bool> reduce_pass(const ct::RoutedTree& fully_gated,
                              const std::vector<double>& p_en,
                              const tech::TechParams& tech,
                              const GateReductionParams& params,
                              const std::vector<bool>* in_cone,
                              const std::vector<bool>* prev_gated) {
  const obs::ScopedTimer obs_timer("reduce");
  obs::TraceSink* trace = obs::active_trace();
  std::uint64_t removed = 0, forced = 0;

  const int n = fully_gated.num_nodes();
  assert(static_cast<int>(p_en.size()) == n);
  std::vector<bool> gated(static_cast<std::size_t>(n), false);
  // Ungated capacitance the parent edge sees through each node's branch.
  std::vector<double> acc(static_cast<std::size_t>(n), 0.0);

  for (int id = 0; id < n; ++id) {  // ascending = children before parents
    const ct::RoutedNode& node = fully_gated.node(id);
    if (node.parent < 0) {
      acc[static_cast<std::size_t>(id)] = node.down_cap;
      continue;  // no edge above the root, hence no gate
    }
    const double p = p_en[static_cast<std::size_t>(id)];
    const double p_parent = p_en[static_cast<std::size_t>(node.parent)];
    const double edge_swcap =
        (tech.wire_cap(node.edge_len) + node.down_cap) * p;

    const bool scoped_out =
        in_cone != nullptr && !(*in_cone)[static_cast<std::size_t>(id)];
    const bool rule1 = p >= params.theta_activity;
    const bool rule2 = edge_swcap < params.theta_swcap;
    const bool rule3 = (p_parent - p) < params.theta_parent;
    bool remove = scoped_out ? !(*prev_gated)[static_cast<std::size_t>(id)]
                             : (rule1 || rule2 || rule3);

    double below = 0.0;
    if (node.is_leaf()) {
      below = node.down_cap;  // the sink load
    } else {
      for (const int ch : {node.left, node.right}) {
        below += gated[static_cast<std::size_t>(ch)]
                     ? tech.gate_input_cap
                     : acc[static_cast<std::size_t>(ch)];
      }
    }
    const double branch_cap = tech.wire_cap(node.edge_len) + below;

    // Forced insertion: never let an ungated subtree grow past the cap a
    // single gate is allowed to drive. Copied out-of-cone decisions embed
    // the previous run's forced insertions already, so the guard only
    // applies to freshly-decided nodes.
    const bool force =
        !scoped_out && remove &&
        branch_cap >= params.force_cap_multiple * tech.gate_input_cap;
    if (force) remove = false;

    gated[static_cast<std::size_t>(id)] = !remove;
    acc[static_cast<std::size_t>(id)] =
        remove ? branch_cap : tech.gate_input_cap;

    removed += remove ? 1 : 0;
    forced += force ? 1 : 0;
    if (trace && !scoped_out) {
      obs::Session* s = obs::current();
      obs::TraceEvent e;
      e.name = "reduce";
      e.cat = "reduction";
      e.ph = 'i';
      e.ts_us = s ? s->now_us() : 0.0;
      e.args.push_back(obs::TraceArg::num("node", static_cast<long long>(id)));
      e.args.push_back(obs::TraceArg::num("p_en", p));
      e.args.push_back(obs::TraceArg::num("edge_swcap", edge_swcap));
      e.args.push_back(obs::TraceArg::boolean("rule_activity", rule1));
      e.args.push_back(obs::TraceArg::boolean("rule_swcap", rule2));
      e.args.push_back(obs::TraceArg::boolean("rule_parent", rule3));
      e.args.push_back(obs::TraceArg::boolean("forced_insertion", force));
      e.args.push_back(obs::TraceArg::boolean("removed", remove));
      trace->event(std::move(e));
    }
  }

  if (obs::metrics_enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("reduction.gates_removed").inc(removed);
    reg.counter("reduction.gates_kept")
        .inc(static_cast<std::uint64_t>(n) - 1 - removed);
    reg.counter("reduction.forced_insertions").inc(forced);
    reg.counter("reduction.passes").inc();
  }
  return gated;
}

}  // namespace

std::vector<bool> reduce_gates(const ct::RoutedTree& fully_gated,
                               const std::vector<double>& p_en,
                               const tech::TechParams& tech,
                               const GateReductionParams& params) {
  return reduce_pass(fully_gated, p_en, tech, params, nullptr, nullptr);
}

std::vector<bool> reduce_gates_cone(const ct::RoutedTree& fully_gated,
                                    const std::vector<double>& p_en,
                                    const tech::TechParams& tech,
                                    const GateReductionParams& params,
                                    const std::vector<bool>& in_cone,
                                    const std::vector<bool>& prev_gated) {
  assert(static_cast<int>(in_cone.size()) == fully_gated.num_nodes());
  assert(static_cast<int>(prev_gated.size()) == fully_gated.num_nodes());
  return reduce_pass(fully_gated, p_en, tech, params, &in_cone, &prev_gated);
}

}  // namespace gcr::gating

#pragma once

#include <vector>

#include "clocktree/routed_tree.h"
#include "tech/params.h"

/// \file gate_reduction.h
/// The paper's gate-reduction heuristic (section 4.3). Gating every edge
/// makes the star-routed enable network dominate both power and area, so
/// gates are removed where they cannot pay for themselves:
///
///   rule 1: the node's activity is close to 1 (it is never off), or
///   rule 2: the node's switched capacitance is very small, or
///   rule 3: the parent's activity is almost the same as the node's (the
///           parent's gate already masks nearly every idle cycle).
///
/// To keep the clock phase delay from growing without bound as gates (which
/// double as buffers) disappear, a gate is force-inserted whenever the
/// accumulated ungated subtree capacitance reaches `force_cap_multiple *
/// C_g` regardless of the three rules.

namespace gcr::gating {

/// Defaults correspond to from_strength(0.5), the sweet spot of the
/// switched-capacitance U-curve (Fig. 5) under the default TechParams.
struct GateReductionParams {
  double theta_activity{0.795};  ///< rule 1: remove when P(EN) >= this
  double theta_swcap{0.01};      ///< rule 2: remove when edge swcap [pF] < this
  double theta_parent{0.0875};   ///< rule 3: remove when P(parent)-P(node) < this
  double force_cap_multiple{170.0};  ///< force a gate at this multiple of C_g

  /// A single aggressiveness knob in [0, 1] for reduction sweeps (Fig. 5):
  /// 0 keeps every gate, 1 strips nearly all of them. The knob scales the
  /// rule-2/3 thresholds and relaxes rule 1 and the forced insertion.
  [[nodiscard]] static GateReductionParams from_strength(double s);
};

/// Decide the gate set for a topology whose fully-gated embedding is
/// `fully_gated` (used for edge lengths and node caps) given the per-node
/// enable signal probabilities `p_en`. Returns edge_gated flags per node
/// (false at the root).
[[nodiscard]] std::vector<bool> reduce_gates(const ct::RoutedTree& fully_gated,
                                             const std::vector<double>& p_en,
                                             const tech::TechParams& tech,
                                             const GateReductionParams& params);

/// Cone-scoped reduction for incremental re-routes (src/eco/): nodes with
/// `in_cone[id]` set get the full rule-1/2/3 + forced-insertion decision;
/// every other node keeps `prev_gated[id]` verbatim. The accumulated
/// ungated-capacitance state is recomputed everywhere with the same
/// formula, so outside the cone -- where the subtree geometry and P(EN)
/// are unchanged by construction -- the copied bit equals what the full
/// pass would re-derive, and the ECO contract's "bit-identical outside
/// the cone" holds for the gate set. Inside the cone (re-merged spine,
/// preserved-subtree roots whose parent edge changed, activity-dirty
/// nodes) the decision is recomputed against the current inputs.
[[nodiscard]] std::vector<bool> reduce_gates_cone(
    const ct::RoutedTree& fully_gated, const std::vector<double>& p_en,
    const tech::TechParams& tech, const GateReductionParams& params,
    const std::vector<bool>& in_cone, const std::vector<bool>& prev_gated);

}  // namespace gcr::gating

#pragma once

#include <vector>

#include "activity/analyzer.h"
#include "clocktree/routed_tree.h"
#include "gating/controller.h"
#include "gating/swcap.h"
#include "tech/params.h"

/// \file controller_logic.h
/// Synthesis and cost analysis of the gate-controller logic -- the open
/// question of the paper's section 6 ("feasibility of the distributed
/// controllers and their impact on the design complexity of the controller
/// logic is currently under investigation").
///
/// The controller must produce, every cycle, the enable EN_g of each
/// masking gate: the OR of the activity indicators of the modules under
/// g's subtree (paper section 1). Two architectures are modeled:
///
///   * Flat: every enable is computed independently as an OR-tree over its
///     subtree's module-activity signals -- |modules(g)| - 1 two-input ORs
///     per gate.
///   * Hierarchical: since EN_parent = EN_left | EN_right | (uncovered
///     modules), each enable reuses the already-computed enables of its
///     maximal gated descendants, collapsing the total to roughly one OR
///     per gate. With distributed controllers, reuse is only possible when
///     the descendant's gate is served by the same controller; enables of
///     other partitions are re-derived from module signals.
///
/// Cost model: 2-input OR cells (area) plus the switched capacitance of
/// the OR output nets, each toggling with the transition probability of
/// its (cumulative) activation mask -- computable exactly from the IMATT.

namespace gcr::gating {

enum class LogicStyle { Flat, Hierarchical };

struct ControllerLogicReport {
  int num_enables{0};     ///< gates served
  int num_or_gates{0};    ///< 2-input OR cells
  double logic_area{0.0}; ///< lambda^2
  double logic_swcap{0.0};///< pF/cycle switched on OR output nets
};

[[nodiscard]] ControllerLogicReport synthesize_controller_logic(
    const ct::RoutedTree& tree, const NodeActivity& act,
    const activity::ActivityAnalyzer& analyzer,
    const ControllerPlacement& ctrl, const tech::TechParams& tech,
    LogicStyle style);

}  // namespace gcr::gating

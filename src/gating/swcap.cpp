#include "gating/swcap.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/timer.h"

namespace gcr::gating {

NodeActivity compute_node_activity(const ct::RoutedTree& tree,
                                   const activity::ActivityAnalyzer& analyzer,
                                   const std::vector<int>& leaf_module) {
  assert(static_cast<int>(leaf_module.size()) == tree.num_leaves);
  const int n = tree.num_nodes();
  NodeActivity act;
  act.mask.assign(static_cast<std::size_t>(n),
                  activity::ActivationMask(analyzer.num_instructions()));
  act.p_en.assign(static_cast<std::size_t>(n), 0.0);
  act.p_tr.assign(static_cast<std::size_t>(n), 0.0);

  for (int id = 0; id < n; ++id) {  // ids ascend bottom-up
    const ct::RoutedNode& node = tree.node(id);
    auto& mask = act.mask[static_cast<std::size_t>(id)];
    if (node.is_leaf()) {
      mask = analyzer.module_mask(leaf_module[static_cast<std::size_t>(id)]);
    } else {
      mask = act.mask[static_cast<std::size_t>(node.left)] |
             act.mask[static_cast<std::size_t>(node.right)];
    }
    act.p_en[static_cast<std::size_t>(id)] = analyzer.signal_prob(mask);
    act.p_tr[static_cast<std::size_t>(id)] = analyzer.transition_prob(mask);
  }
  return act;
}

SwCapReport evaluate_swcap(const ct::RoutedTree& tree, const NodeActivity& act,
                           const ControllerPlacement& ctrl,
                           const tech::TechParams& tech, CellStyle style) {
  const obs::ScopedTimer obs_timer("eval");
  if (obs::metrics_enabled()) {
    obs::Registry::global().counter("eval.swcap_evals").inc();
  }
  const int n = tree.num_nodes();
  assert(static_cast<int>(act.p_en.size()) == n);
  const bool masking = style == CellStyle::MaskingGate;
  const double cell_in_cap =
      masking ? tech.gate_input_cap : tech.buffer_input_cap();

  SwCapReport rep;

  // Enable domain probability controlling each node's parent edge,
  // propagated root -> leaves (descending ids visit parents first).
  std::vector<double> dom(static_cast<std::size_t>(n), 1.0);
  for (int id = n - 1; id >= 0; --id) {
    const ct::RoutedNode& node = tree.node(id);
    if (node.parent < 0) {
      dom[static_cast<std::size_t>(id)] = 1.0;  // the root edge domain
    } else if (masking && node.gated) {
      dom[static_cast<std::size_t>(id)] = act.p_en[static_cast<std::size_t>(id)];
    } else {
      dom[static_cast<std::size_t>(id)] =
          dom[static_cast<std::size_t>(node.parent)];
    }
  }

  for (int id = 0; id < n; ++id) {
    const ct::RoutedNode& node = tree.node(id);

    // Pin load at the bottom node of this edge.
    double pin_cap = 0.0;
    if (node.is_leaf()) {
      pin_cap = node.down_cap;  // the sink load itself
    } else {
      for (const int ch : {node.left, node.right}) {
        const ct::RoutedNode& c = tree.node(ch);
        if (c.gated) pin_cap += c.gate_size * cell_in_cap;
      }
    }

    if (node.parent >= 0) {
      const double edge_cap = tech.wire_cap(node.edge_len) + pin_cap;
      rep.clock_swcap += edge_cap * dom[static_cast<std::size_t>(id)];
      rep.ungated_swcap += edge_cap;
      rep.clock_wirelength += node.edge_len;
    } else {
      // Pin loads hanging directly at the root are always clocked.
      rep.clock_swcap += pin_cap;
      rep.ungated_swcap += pin_cap;
    }

    if (node.gated && node.parent >= 0) {
      ++rep.num_cells;
      rep.cell_area +=
          node.gate_size * (masking ? tech.gate_area : tech.buffer_area());
      if (masking) {
        const double star = ctrl.star_length(tree.gate_location(id));
        rep.star_wirelength += star;
        rep.ctrl_swcap += (tech.wire_cap(star) +
                           node.gate_size * tech.gate_enable_cap) *
                          act.p_tr[static_cast<std::size_t>(id)];
      }
    }
  }

  rep.wire_area = tech.wire_area(rep.clock_wirelength + rep.star_wirelength);
  return rep;
}

}  // namespace gcr::gating

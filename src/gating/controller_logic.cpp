#include "gating/controller_logic.h"

#include <cassert>

namespace gcr::gating {

namespace {

/// Collect the input activation masks for gate `g`'s OR-tree by walking
/// g's subtree: a gated descendant served by the same controller
/// contributes its (already computed) enable; anything else decomposes
/// down to module-activity signals at the leaves.
void collect_inputs(const ct::RoutedTree& tree, const NodeActivity& act,
                    const ControllerPlacement& ctrl, int my_partition,
                    bool hierarchical, int node,
                    std::vector<const activity::ActivationMask*>& inputs) {
  const ct::RoutedNode& n = tree.node(node);
  if (n.is_leaf()) {
    inputs.push_back(&act.mask[static_cast<std::size_t>(node)]);
    return;
  }
  for (const int ch : {n.left, n.right}) {
    const ct::RoutedNode& c = tree.node(ch);
    if (hierarchical && c.gated &&
        ctrl.partition_of(tree.gate_location(ch)) == my_partition) {
      inputs.push_back(&act.mask[static_cast<std::size_t>(ch)]);
    } else {
      collect_inputs(tree, act, ctrl, my_partition, hierarchical, ch, inputs);
    }
  }
}

}  // namespace

ControllerLogicReport synthesize_controller_logic(
    const ct::RoutedTree& tree, const NodeActivity& act,
    const activity::ActivityAnalyzer& analyzer,
    const ControllerPlacement& ctrl, const tech::TechParams& tech,
    LogicStyle style) {
  assert(static_cast<int>(act.mask.size()) == tree.num_nodes());
  const bool hier = style == LogicStyle::Hierarchical;

  ControllerLogicReport rep;
  for (const int g : tree.gated_nodes()) {
    ++rep.num_enables;
    const int part = ctrl.partition_of(tree.gate_location(g));

    std::vector<const activity::ActivationMask*> inputs;
    collect_inputs(tree, act, ctrl, part, hier, g, inputs);
    assert(!inputs.empty());
    if (inputs.size() == 1) continue;  // a wire, no OR cell

    // Left-fold OR tree: each internal cell's output mask is the running
    // union; its net toggles with that union's transition probability.
    activity::ActivationMask acc = *inputs.front();
    for (std::size_t i = 1; i < inputs.size(); ++i) {
      acc |= *inputs[i];
      ++rep.num_or_gates;
      rep.logic_swcap +=
          tech.or_output_cap * analyzer.transition_prob(acc);
    }
  }
  rep.logic_area = rep.num_or_gates * tech.or_gate_area;
  return rep;
}

}  // namespace gcr::gating

#pragma once

#include <vector>

#include "geom/die.h"
#include "geom/point.h"

/// \file controller.h
/// Gate-controller placement and the star routing of enable signals.
///
/// The paper's base configuration is a single centralized controller at the
/// chip center (CP); every gate's enable is star-routed from it, so the
/// enable wirelength of a gate is its Manhattan distance to CP. Section 6
/// proposes *distributed* controllers: the chip is divided into k equal
/// partitions (k a power of two, arranged as a grid), each with its own
/// controller at the partition center, cutting the expected star length by
/// about 1/sqrt(k).

namespace gcr::gating {

class ControllerPlacement {
 public:
  /// `num_partitions` must be a perfect square (1, 4, 16, 64, ...) so the
  /// die divides into a gxg grid of equal partitions.
  ControllerPlacement(const geom::DieArea& die, int num_partitions);

  [[nodiscard]] int num_partitions() const { return grid_ * grid_; }
  [[nodiscard]] const geom::DieArea& die() const { return die_; }

  /// Index of the partition containing `p` (points outside the die clamp to
  /// the nearest partition).
  [[nodiscard]] int partition_of(const geom::Point& p) const;

  /// The controller serving a gate at `gate_loc`.
  [[nodiscard]] geom::Point controller_for(const geom::Point& gate_loc) const;

  /// Star (enable) wirelength for a gate at `gate_loc`.
  [[nodiscard]] double star_length(const geom::Point& gate_loc) const;

  /// All controller locations (partition centers).
  [[nodiscard]] std::vector<geom::Point> controller_locations() const;

  /// The paper's closed-form estimate of total star routing area for G
  /// gates on a side-D die with k partitions: G * D / (4 sqrt(k)) wire
  /// length (times wire width gives area). Used by the Fig. 6 analysis.
  [[nodiscard]] double analytic_total_star_length(int num_gates) const;

 private:
  geom::DieArea die_;
  int grid_;
};

}  // namespace gcr::gating

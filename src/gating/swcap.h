#pragma once

#include <vector>

#include "activity/analyzer.h"
#include "clocktree/routed_tree.h"
#include "gating/controller.h"
#include "tech/params.h"

/// \file swcap.h
/// Exact switched-capacitance, power and area evaluation of an embedded
/// clock tree (paper section 2). This is the *measurement* side: unlike the
/// construction heuristic (which estimates controller wirelengths from
/// merging-segment midpoints), it uses the embedded gate locations and the
/// actual enable domains.
///
///   W(T) = sum_edges (c |e_i| + C_i) P(dom_i)     [clock tree]
///   W(S) = sum_gates (c |EN_i| + C_g) P_tr(EN_i)  [controller star]
///
/// where dom_i is the enable controlling edge e_i: the gate on e_i itself if
/// present, else the nearest gated ancestor edge (P = 1 when none). C_i is
/// the pin load hanging at the bottom node of e_i: the sink cap for a leaf
/// edge, the clock-input caps of the child gates for an internal edge.

namespace gcr::gating {

/// How the inserted cells behave.
enum class CellStyle {
  MaskingGate,  ///< AND gates with enables: gating masks, star net switches
  Buffer,       ///< plain buffers (half-size): no enables, everything at P=1
};

struct SwCapReport {
  double clock_swcap{0.0};   ///< W(T) [pF]
  double ctrl_swcap{0.0};    ///< W(S) [pF]
  double clock_wirelength{0.0};
  double star_wirelength{0.0};
  double wire_area{0.0};     ///< (clock + star) wire area [lambda^2]
  double cell_area{0.0};     ///< gate/buffer cell area [lambda^2]
  int num_cells{0};          ///< inserted gates or buffers
  double ungated_swcap{0.0}; ///< W(T) with every P forced to 1 (reference)

  [[nodiscard]] double total_swcap() const { return clock_swcap + ctrl_swcap; }
  [[nodiscard]] double total_area() const { return wire_area + cell_area; }
};

/// Per-node enable statistics for an embedded tree: the activation mask and
/// its P(EN)/P_tr(EN), unioned bottom-up from the leaf modules.
struct NodeActivity {
  std::vector<activity::ActivationMask> mask;
  std::vector<double> p_en;
  std::vector<double> p_tr;
};

/// Compute per-node activity; `leaf_module[i]` maps leaf/sink i to its
/// module id (pass an identity map when sinks == modules).
[[nodiscard]] NodeActivity compute_node_activity(
    const ct::RoutedTree& tree, const activity::ActivityAnalyzer& analyzer,
    const std::vector<int>& leaf_module);

/// Evaluate switched capacitance, wirelength and area.
[[nodiscard]] SwCapReport evaluate_swcap(const ct::RoutedTree& tree,
                                         const NodeActivity& act,
                                         const ControllerPlacement& ctrl,
                                         const tech::TechParams& tech,
                                         CellStyle style);

}  // namespace gcr::gating

#include "gating/controller.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/metrics.h"

namespace gcr::gating {

namespace {

int isqrt_exact(int k) {
  const int g = static_cast<int>(std::lround(std::sqrt(static_cast<double>(k))));
  return g * g == k ? g : -1;
}

}  // namespace

ControllerPlacement::ControllerPlacement(const geom::DieArea& die,
                                         int num_partitions)
    : die_(die), grid_(isqrt_exact(num_partitions)) {
  assert(grid_ >= 1 && "num_partitions must be a perfect square >= 1");
}

int ControllerPlacement::partition_of(const geom::Point& p) const {
  const double fx = (p.x - die_.xlo) / die_.width();
  const double fy = (p.y - die_.ylo) / die_.height();
  const int cx = std::clamp(static_cast<int>(fx * grid_), 0, grid_ - 1);
  const int cy = std::clamp(static_cast<int>(fy * grid_), 0, grid_ - 1);
  return cy * grid_ + cx;
}

geom::Point ControllerPlacement::controller_for(
    const geom::Point& gate_loc) const {
  const int part = partition_of(gate_loc);
  const int cx = part % grid_;
  const int cy = part / grid_;
  const double pw = die_.width() / grid_;
  const double ph = die_.height() / grid_;
  return {die_.xlo + (cx + 0.5) * pw, die_.ylo + (cy + 0.5) * ph};
}

double ControllerPlacement::star_length(const geom::Point& gate_loc) const {
  const double len = geom::manhattan_dist(gate_loc, controller_for(gate_loc));
  if (obs::metrics_enabled()) [[unlikely]] {
    static obs::Counter& c =
        obs::Registry::global().counter("controller.star_queries");
    c.inc();
    obs::Registry::global().histogram("controller.star_length").observe(len);
  }
  return len;
}

std::vector<geom::Point> ControllerPlacement::controller_locations() const {
  std::vector<geom::Point> locs;
  locs.reserve(static_cast<std::size_t>(grid_) * grid_);
  const double pw = die_.width() / grid_;
  const double ph = die_.height() / grid_;
  for (int cy = 0; cy < grid_; ++cy)
    for (int cx = 0; cx < grid_; ++cx)
      locs.push_back(
          {die_.xlo + (cx + 0.5) * pw, die_.ylo + (cy + 0.5) * ph});
  return locs;
}

double ControllerPlacement::analytic_total_star_length(int num_gates) const {
  // Paper section 6: side-D chip, longest star edge D/2, average assumed
  // half of that (D/4); with k partitions each edge shrinks by 1/sqrt(k).
  const double d = std::max(die_.width(), die_.height());
  return num_gates * d / (4.0 * grid_);
}

}  // namespace gcr::gating

#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

/// \file pool.h
/// gcr::par -- a small deterministic parallel-execution subsystem.
///
/// Design contract (docs/parallelism.md): *the result of every parallel
/// construct is bit-identical at any thread count, including 1*. Two rules
/// make that hold by construction:
///
///   1. Work is split into chunks whose boundaries depend only on the
///      range and the grain, never on the number of threads. Threads race
///      for whole chunks; they never subdivide or steal partial chunks.
///   2. `parallel_reduce` stores one partial result per chunk and combines
///      them serially in ascending chunk order after the barrier, so
///      floating-point reduction order is fixed.
///
/// Scheduling therefore only changes *which thread* runs a chunk, never
/// what the chunk computes or how results are folded.
///
/// The pool is a fixed set of workers created once (`ThreadPool::global()`)
/// and parked on a condition variable between jobs; a construct's `width`
/// caps how many of them participate (the caller always participates too).
/// `width <= 1`, a single chunk, or a nested call from inside a worker all
/// fall back to running the same chunks inline on the calling thread.

namespace gcr::obs {
class Session;
}  // namespace gcr::obs

namespace gcr::par {

/// Cumulative pool telemetry since process start (the global pool lives for
/// the process). All times are monotonic-clock nanoseconds.
///
///   * worker `busy_ns`   -- time spent inside run_job (chunk execution);
///   * worker `idle_ns`   -- time parked on the work condition variable;
///   * `dispatch_overhead_ns` -- per job, the caller's wall time for the
///     whole construct minus the caller lane's own busy time: wakeup
///     latency, lock traffic and straggler wait. This is the number that
///     makes the route_par t>1 regression explainable -- when it rivals
///     the busy time, the shards are too small for the dispatch cost.
///
/// The same overhead also feeds the `par.dispatch_overhead_ns` counter
/// (plus `par.jobs` and a `par.chunks_per_job` histogram) when metrics are
/// enabled, so bench and profile reports capture it per run.
struct PoolTelemetry {
  struct Worker {
    std::uint64_t busy_ns{0};
    std::uint64_t idle_ns{0};
    std::uint64_t chunks{0};
  };
  std::vector<Worker> workers;
  std::uint64_t jobs{0};  ///< parallel dispatches (serial fallbacks excluded)
  std::uint64_t dispatch_overhead_ns{0};
};

/// One-line human summary: "pool: 7 workers, busy 12.3%, dispatch overhead
/// 4.2 ms over 812 jobs". The --verbose CLI path appends this when running
/// with more than one thread.
void write_pool_summary(std::ostream& os, const PoolTelemetry& t);

/// std::thread::hardware_concurrency() clamped to >= 1, cached.
[[nodiscard]] int hardware_threads();

/// The process default width: GCR_THREADS (clamped to [1, 256]) when set,
/// else hardware_threads(). Read once at first use.
[[nodiscard]] int default_threads();

/// Map an options-style request to an effective width: values > 0 pass
/// through, 0 (the "pick for me" default) resolves to default_threads().
[[nodiscard]] int resolve_threads(int requested);

/// True while the current thread is executing pool work (including a
/// caller participating in its own job). Nested constructs run serially.
[[nodiscard]] bool in_worker();

/// Dense 1-based ordinal of the pool lane owning the current thread;
/// 0 for every non-pool thread (including a caller participating in its
/// own job). Stable for the thread's lifetime -- gcr::log stamps it on
/// events so a worker's emissions sort onto its own track.
[[nodiscard]] int worker_ordinal();

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers; the caller is the remaining lane.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const { return num_threads_; }

  /// The process-wide pool. Sized to cover default_threads() but at least
  /// 8 lanes, so determinism suites can request widths above the machine's
  /// core count (idle workers just stay parked).
  static ThreadPool& global();

  /// Run job(c) for every chunk c in [0, num_chunks) using up to `width`
  /// threads including the caller; blocks until every chunk ran. The first
  /// exception thrown by a chunk is rethrown here after completion.
  /// Safe to call from multiple threads concurrently (the gcr::serve
  /// request lanes do): constructs serialize in arrival order on an
  /// internal dispatch lock, so each job owns the worker set exclusively
  /// -- latecomers block, they never corrupt a live job's chunk state.
  void run_chunks(int width, std::int64_t num_chunks,
                  const std::function<void(std::int64_t)>& job);

  /// Snapshot of the cumulative telemetry (workers sized num_threads - 1).
  [[nodiscard]] PoolTelemetry telemetry() const;

 private:
  /// Per-worker telemetry slots, cache-line separated so hot-loop bumps on
  /// one worker never false-share with another.
  struct alignas(64) WorkerStats {
    std::atomic<std::uint64_t> busy_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
    std::atomic<std::uint64_t> chunks{0};
  };

  void worker_loop(std::size_t index);
  void run_job(const std::function<void(std::int64_t)>& job, std::int64_t total,
               WorkerStats* stats);

  int num_threads_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerStats>> worker_stats_;
  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> dispatch_ns_{0};

  std::mutex dispatch_mu_;  ///< held for a whole construct; serializes jobs
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers park here between jobs
  std::condition_variable done_cv_;  ///< the caller waits here
  std::uint64_t generation_{0};
  bool stop_{false};
  const std::function<void(std::int64_t)>* job_{nullptr};
  /// The dispatching caller's bound obs session (nullptr when unobserved);
  /// workers bind a Session worker view of it around run_job so their trace
  /// events reach the run's sink instead of vanishing (obs/session.h).
  obs::Session* job_session_{nullptr};
  std::int64_t total_chunks_{0};
  std::atomic<std::int64_t> next_chunk_{0};
  std::atomic<std::int64_t> done_chunks_{0};
  std::atomic<int> slots_{0};    ///< worker lanes the current job may use
  std::atomic<int> active_{0};   ///< workers currently inside run_job
  std::exception_ptr error_;     ///< first chunk exception (guarded by mu_)
};

namespace detail {
[[nodiscard]] inline std::int64_t chunk_count(std::int64_t n,
                                              std::int64_t grain) {
  return n <= 0 ? 0 : (n + grain - 1) / grain;
}

/// Shard-shape metrics, two observations per construct (never per chunk --
/// all shards in one job share a size except the tail, so the job-level
/// numbers are the distribution).
inline void observe_shards(std::int64_t n, std::int64_t grain,
                           std::int64_t chunks) {
  if (obs::metrics_enabled()) [[unlikely]] {
    static obs::Histogram& items =
        obs::Registry::global().histogram("par.shard_items");
    items.observe(static_cast<double>(std::min(n, grain)));
    static obs::Histogram& per_job =
        obs::Registry::global().histogram("par.chunks_per_job");
    per_job.observe(static_cast<double>(chunks));
  }
}
}  // namespace detail

/// body(b, e) over deterministic grain-sized subranges of [begin, end).
/// Safe when iterations write disjoint state; iterations must not touch
/// state another live chunk reads.
template <typename Body>
void parallel_for(int width, std::int64_t begin, std::int64_t end,
                  std::int64_t grain, Body&& body) {
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t chunks = detail::chunk_count(end - begin, grain);
  if (chunks == 0) return;
  detail::observe_shards(end - begin, grain, chunks);
  const std::function<void(std::int64_t)> job = [&](std::int64_t c) {
    const std::int64_t b = begin + c * grain;
    body(b, std::min(end, b + grain));
  };
  ThreadPool::global().run_chunks(width, chunks, job);
}

/// Deterministic index-ordered reduction: map(b, e) produces one partial
/// value per chunk (chunk boundaries fixed by `grain` alone); partials are
/// folded serially in ascending chunk order as acc = combine(acc, partial).
/// Identical results at every width because neither the chunking nor the
/// fold order ever depends on the thread count.
template <typename T, typename MapChunk, typename Combine>
[[nodiscard]] T parallel_reduce(int width, std::int64_t begin,
                                std::int64_t end, std::int64_t grain, T init,
                                MapChunk&& map, Combine&& combine) {
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t chunks = detail::chunk_count(end - begin, grain);
  if (chunks == 0) return init;
  detail::observe_shards(end - begin, grain, chunks);
  std::vector<T> partial(static_cast<std::size_t>(chunks), init);
  const std::function<void(std::int64_t)> job = [&](std::int64_t c) {
    const std::int64_t b = begin + c * grain;
    partial[static_cast<std::size_t>(c)] = map(b, std::min(end, b + grain));
  };
  ThreadPool::global().run_chunks(width, chunks, job);
  T acc = std::move(init);
  for (std::int64_t c = 0; c < chunks; ++c)
    acc = combine(std::move(acc), std::move(partial[static_cast<std::size_t>(c)]));
  return acc;
}

}  // namespace gcr::par

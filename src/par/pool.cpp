#include "par/pool.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <ostream>

#include "guard/deadline.h"
#include "obs/session.h"

namespace gcr::par {

namespace {

thread_local bool t_in_worker = false;
thread_local int t_worker_ordinal = 0;  ///< 1-based pool lane, 0 = caller

int clamp_threads(long v) {
  if (v < 1) return 1;
  if (v > 256) return 256;
  return static_cast<int>(v);
}

std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int hardware_threads() {
  static const int n =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  return n;
}

int default_threads() {
  static const int n = [] {
    if (const char* env = std::getenv("GCR_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env) return clamp_threads(v);
    }
    return hardware_threads();
  }();
  return n;
}

int resolve_threads(int requested) {
  return requested > 0 ? requested : default_threads();
}

bool in_worker() { return t_in_worker; }

int worker_ordinal() { return t_worker_ordinal; }

void write_pool_summary(std::ostream& os, const PoolTelemetry& t) {
  std::uint64_t busy = 0;
  std::uint64_t idle = 0;
  for (const PoolTelemetry::Worker& w : t.workers) {
    busy += w.busy_ns;
    idle += w.idle_ns;
  }
  const double denom = static_cast<double>(busy + idle);
  const double busy_pct =
      denom > 0.0 ? 100.0 * static_cast<double>(busy) / denom : 0.0;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "pool: %zu workers, busy %.1f%%, dispatch overhead %.2f ms"
                " over %llu jobs\n",
                t.workers.size(), busy_pct,
                static_cast<double>(t.dispatch_overhead_ns) / 1e6,
                static_cast<unsigned long long>(t.jobs));
  os << buf;
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  const std::size_t n = static_cast<std::size_t>(num_threads_ - 1);
  workers_.reserve(n);
  worker_stats_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    worker_stats_.push_back(std::make_unique<WorkerStats>());
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(default_threads(), 8));
  return pool;
}

PoolTelemetry ThreadPool::telemetry() const {
  PoolTelemetry t;
  t.workers.reserve(worker_stats_.size());
  for (const auto& ws : worker_stats_) {
    PoolTelemetry::Worker w;
    w.busy_ns = ws->busy_ns.load(std::memory_order_relaxed);
    w.idle_ns = ws->idle_ns.load(std::memory_order_relaxed);
    w.chunks = ws->chunks.load(std::memory_order_relaxed);
    t.workers.push_back(w);
  }
  t.jobs = jobs_.load(std::memory_order_relaxed);
  t.dispatch_overhead_ns = dispatch_ns_.load(std::memory_order_relaxed);
  return t;
}

void ThreadPool::worker_loop(std::size_t index) {
  t_in_worker = true;
  t_worker_ordinal = static_cast<int>(index) + 1;
  WorkerStats& stats = *worker_stats_[index];
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::int64_t)>* job = nullptr;
    obs::Session* session = nullptr;
    std::int64_t total = 0;
    {
      const std::uint64_t park0 = mono_ns();
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      stats.idle_ns.fetch_add(mono_ns() - park0, std::memory_order_relaxed);
      if (stop_) return;
      seen = generation_;
      // The job may already be fully drained (the caller reset it under
      // this mutex); there is nothing left to join.
      if (job_ == nullptr) continue;
      // The job's width caps how many workers join; latecomers skip.
      if (slots_.fetch_sub(1, std::memory_order_relaxed) <= 0) continue;
      job = job_;
      session = job_session_;
      total = total_chunks_;
      active_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      // When the dispatching caller was observed, give this worker a view
      // of its session for the job's duration: shared trace sink and time
      // epoch, private phase tree (obs/session.h). Without this, trace
      // events emitted inside worker chunks are silently dropped.
      std::optional<obs::Session> view;
      std::optional<obs::Bind> bind;
      if (session != nullptr) {
        view.emplace(obs::Session::WorkerViewTag{}, *session);
        bind.emplace(&*view);
      }
      const std::uint64_t busy0 = mono_ns();
      run_job(*job, total, &stats);
      stats.busy_ns.fetch_add(mono_ns() - busy0, std::memory_order_relaxed);
    }
    {
      const std::lock_guard<std::mutex> lk(mu_);
      if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_job(const std::function<void(std::int64_t)>& job,
                         std::int64_t total, WorkerStats* stats) {
  for (;;) {
    const std::int64_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= total) return;
    try {
      job(c);
    } catch (...) {
      const std::lock_guard<std::mutex> lk(mu_);
      if (!error_) error_ = std::current_exception();
    }
    if (stats != nullptr) stats->chunks.fetch_add(1, std::memory_order_relaxed);
    if (done_chunks_.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
      const std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_chunks(int width, std::int64_t num_chunks,
                            const std::function<void(std::int64_t)>& job) {
  if (num_chunks <= 0) return;
  // Cancellation check on the *caller* thread, before any dispatch: a
  // parallel construct either runs to completion or not at all, and pool
  // workers never observe the ambient deadline -- so the set of possible
  // abort points is the same at every thread width (docs/robustness.md).
  guard::poll_deadline("parallel");
  width = std::min(width, num_threads_);
  if (width <= 1 || num_chunks == 1 || t_in_worker || workers_.empty()) {
    // Serial fallback: same chunks, same order -- the chunking (and thus
    // every chunk-local decision) is identical to the parallel path.
    for (std::int64_t c = 0; c < num_chunks; ++c) job(c);
    return;
  }
  // One construct owns the worker set at a time. Concurrent callers (the
  // serve lanes routing independent requests) park here until the current
  // job fully drains; chunk state below is therefore never shared between
  // two live jobs. Nested constructs never reach this lock -- t_in_worker
  // sent them down the serial fallback above -- so it cannot self-deadlock.
  const std::lock_guard<std::mutex> dispatch(dispatch_mu_);
  const std::uint64_t t0 = mono_ns();
  {
    const std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    job_session_ = obs::current();
    total_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    done_chunks_.store(0, std::memory_order_relaxed);
    slots_.store(width - 1, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is a lane too; mark it as pool work so nested constructs
  // reached from its chunks serialize instead of re-entering the pool.
  t_in_worker = true;
  const std::uint64_t busy0 = mono_ns();
  run_job(job, num_chunks, nullptr);
  const std::uint64_t caller_busy = mono_ns() - busy0;
  t_in_worker = false;
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    // Wait for completion AND for every worker to leave run_job, so no
    // straggler can touch the chunk counters of a later job.
    done_cv_.wait(lk, [&] {
      return done_chunks_.load(std::memory_order_acquire) >= total_chunks_ &&
             active_.load(std::memory_order_acquire) == 0;
    });
    job_ = nullptr;
    job_session_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  // Everything the construct cost beyond the caller lane's own chunk work:
  // wakeup latency, lock traffic, straggler wait. See PoolTelemetry.
  const std::uint64_t wall = mono_ns() - t0;
  const std::uint64_t overhead = wall > caller_busy ? wall - caller_busy : 0;
  jobs_.fetch_add(1, std::memory_order_relaxed);
  dispatch_ns_.fetch_add(overhead, std::memory_order_relaxed);
  if (obs::metrics_enabled()) [[unlikely]] {
    static obs::Counter& c_overhead =
        obs::Registry::global().counter("par.dispatch_overhead_ns");
    c_overhead.inc(overhead);
    static obs::Counter& c_jobs = obs::Registry::global().counter("par.jobs");
    c_jobs.inc();
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace gcr::par

#include "par/pool.h"

#include <cstdlib>

#include "guard/deadline.h"

namespace gcr::par {

namespace {

thread_local bool t_in_worker = false;

int clamp_threads(long v) {
  if (v < 1) return 1;
  if (v > 256) return 256;
  return static_cast<int>(v);
}

}  // namespace

int hardware_threads() {
  static const int n =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  return n;
}

int default_threads() {
  static const int n = [] {
    if (const char* env = std::getenv("GCR_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env) return clamp_threads(v);
    }
    return hardware_threads();
  }();
  return n;
}

int resolve_threads(int requested) {
  return requested > 0 ? requested : default_threads();
}

bool in_worker() { return t_in_worker; }

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 0; i + 1 < num_threads_; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(std::max(default_threads(), 8));
  return pool;
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::int64_t)>* job = nullptr;
    std::int64_t total = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      // The job may already be fully drained (the caller reset it under
      // this mutex); there is nothing left to join.
      if (job_ == nullptr) continue;
      // The job's width caps how many workers join; latecomers skip.
      if (slots_.fetch_sub(1, std::memory_order_relaxed) <= 0) continue;
      job = job_;
      total = total_chunks_;
      active_.fetch_add(1, std::memory_order_relaxed);
    }
    run_job(*job, total);
    {
      const std::lock_guard<std::mutex> lk(mu_);
      if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_job(const std::function<void(std::int64_t)>& job,
                         std::int64_t total) {
  for (;;) {
    const std::int64_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= total) return;
    try {
      job(c);
    } catch (...) {
      const std::lock_guard<std::mutex> lk(mu_);
      if (!error_) error_ = std::current_exception();
    }
    if (done_chunks_.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
      const std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_chunks(int width, std::int64_t num_chunks,
                            const std::function<void(std::int64_t)>& job) {
  if (num_chunks <= 0) return;
  // Cancellation check on the *caller* thread, before any dispatch: a
  // parallel construct either runs to completion or not at all, and pool
  // workers never observe the ambient deadline -- so the set of possible
  // abort points is the same at every thread width (docs/robustness.md).
  guard::poll_deadline("parallel");
  width = std::min(width, num_threads_);
  if (width <= 1 || num_chunks == 1 || t_in_worker || workers_.empty()) {
    // Serial fallback: same chunks, same order -- the chunking (and thus
    // every chunk-local decision) is identical to the parallel path.
    for (std::int64_t c = 0; c < num_chunks; ++c) job(c);
    return;
  }
  {
    const std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    total_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    done_chunks_.store(0, std::memory_order_relaxed);
    slots_.store(width - 1, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is a lane too; mark it as pool work so nested constructs
  // reached from its chunks serialize instead of re-entering the pool.
  t_in_worker = true;
  run_job(job, num_chunks);
  t_in_worker = false;
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    // Wait for completion AND for every worker to leave run_job, so no
    // straggler can touch the chunk counters of a later job.
    done_cv_.wait(lk, [&] {
      return done_chunks_.load(std::memory_order_acquire) >= total_chunks_ &&
             active_.load(std::memory_order_acquire) == 0;
    });
    job_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace gcr::par

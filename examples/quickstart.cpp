/// \file quickstart.cpp
/// Minimal end-to-end use of the public API: generate a small design,
/// route it in the three styles the paper compares, print the metrics and
/// dump an SVG of the gated result.
///
/// Run:  ./quickstart [output.svg]

#include <fstream>
#include <iostream>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "core/router.h"
#include "eval/table.h"
#include "io/svg.h"

using namespace gcr;

int main(int argc, char** argv) {
  // A small r1-like instance: 64 sinks on a 8000x8000 lambda die.
  benchdata::RBenchSpec spec{"quick", 64, 8000.0, 0.005, 0.05, 42};
  benchdata::RBench bench = benchdata::generate_rbench(spec);

  benchdata::WorkloadSpec wspec;
  wspec.num_instructions = 16;
  wspec.num_clusters = 9;
  wspec.target_activity = 0.35;
  wspec.stream_length = 10000;
  benchdata::Workload wl =
      benchdata::generate_workload(wspec, bench.sinks, bench.die);

  core::Design design{bench.die, bench.sinks, std::move(wl.rtl),
                      std::move(wl.stream), {}};
  core::GatedClockRouter router(std::move(design));

  eval::Table table({"style", "W(T) pF", "W(S) pF", "W pF", "area 1e6*l^2",
                     "wirelen", "gates", "skew", "reduction%"});
  core::RouterResult gated_result;  // kept for the SVG dump

  for (const auto& [style, name] :
       {std::pair{core::TreeStyle::Buffered, "buffered"},
        std::pair{core::TreeStyle::Gated, "gated"},
        std::pair{core::TreeStyle::GatedReduced, "gated+red"}}) {
    core::RouterOptions opts;
    opts.style = style;
    core::RouterResult r = router.route(opts);
    table.add_row({name, eval::Table::num(r.swcap.clock_swcap),
                   eval::Table::num(r.swcap.ctrl_swcap),
                   eval::Table::num(r.swcap.total_swcap()),
                   eval::Table::num(r.swcap.total_area() / 1e6),
                   eval::Table::num(r.swcap.clock_wirelength, 0),
                   std::to_string(r.swcap.num_cells),
                   eval::Table::num(r.delays.skew(), 9),
                   eval::Table::num(r.gate_reduction_pct(), 1)});
    if (style == core::TreeStyle::GatedReduced) gated_result = std::move(r);
  }

  std::cout << "Gated clock routing quickstart (" << spec.num_sinks
            << " sinks, avg activity " << wspec.target_activity << ")\n\n";
  table.print(std::cout);

  const char* path = argc > 1 ? argv[1] : "quickstart.svg";
  std::ofstream svg(path);
  gating::ControllerPlacement ctrl(bench.die, 1);
  io::write_svg(svg, gated_result.tree, bench.die, ctrl);
  std::cout << "\nwrote " << path << "\n";
  return 0;
}

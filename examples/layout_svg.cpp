/// \file layout_svg.cpp
/// Renders the routed trees as SVG for visual inspection -- the library's
/// version of the paper's Figure 1 (gated clock tree with a star-routed
/// controller) and Figure 6 (centralized vs distributed controllers).
/// Writes four drawings: buffered, fully gated, gate-reduced, and
/// gate-reduced with 4 distributed controllers.
///
/// Run:  ./layout_svg [output_dir]

#include <filesystem>
#include <fstream>
#include <iostream>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "core/router.h"
#include "io/svg.h"

using namespace gcr;

int main(int argc, char** argv) {
  const std::filesystem::path dir = argc > 1 ? argv[1] : ".";
  std::filesystem::create_directories(dir);

  benchdata::RBenchSpec spec{"svg", 96, 12000.0, 0.005, 0.06, 7};
  benchdata::RBench rb = benchdata::generate_rbench(spec);
  benchdata::WorkloadSpec wspec;
  wspec.num_instructions = 24;
  wspec.num_clusters = 16;
  wspec.target_activity = 0.35;
  wspec.locality = 0.85;
  wspec.stream_length = 10000;
  benchdata::Workload wl =
      benchdata::generate_workload(wspec, rb.sinks, rb.die);
  core::Design design{rb.die, rb.sinks, std::move(wl.rtl),
                      std::move(wl.stream), {}};
  const core::GatedClockRouter router(std::move(design));

  const auto dump = [&](const char* file, core::TreeStyle style,
                        int partitions) {
    core::RouterOptions opts;
    opts.style = style;
    opts.controller_partitions = partitions;
    const core::RouterResult r = router.route(opts);
    const gating::ControllerPlacement ctrl(rb.die, partitions);
    io::SvgOptions sopts;
    sopts.draw_star = style != core::TreeStyle::Buffered;
    std::ofstream os(dir / file);
    io::write_svg(os, r.tree, rb.die, ctrl, sopts);
    std::cout << "wrote " << (dir / file).string() << "  (W = "
              << r.swcap.total_swcap() << " pF, " << r.swcap.num_cells
              << " cells)\n";
  };

  dump("buffered.svg", core::TreeStyle::Buffered, 1);
  dump("gated_full.svg", core::TreeStyle::Gated, 1);
  dump("gated_reduced.svg", core::TreeStyle::GatedReduced, 1);
  dump("gated_distributed.svg", core::TreeStyle::GatedReduced, 4);
  return 0;
}

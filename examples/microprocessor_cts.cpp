/// \file microprocessor_cts.cpp
/// The paper's motivating scenario end-to-end: clock-tree synthesis for a
/// microprocessor whose module activities come from instruction-level
/// simulation. Builds the r1-class design, routes it with all three
/// methods, and reports the power/area/skew trade-off table a designer
/// would use -- including the effect of distributed controllers (section 6).
///
/// Run:  ./microprocessor_cts [r1|r2|r3|r4|r5] [avg_activity]

#include <cstdlib>
#include <iostream>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "core/router.h"
#include "eval/table.h"

using namespace gcr;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "r1";
  const double activity = argc > 2 ? std::atof(argv[2]) : 0.4;

  benchdata::RBench rb = benchdata::generate_rbench(name);
  benchdata::WorkloadSpec wspec;
  wspec.num_instructions = 32;
  wspec.num_clusters = std::max(16, rb.spec.num_sinks / 32);
  wspec.target_activity = activity;
  wspec.locality = 0.85;
  wspec.stream_length = 20000;
  benchdata::Workload wl =
      benchdata::generate_workload(wspec, rb.sinks, rb.die);

  std::cout << "Microprocessor gated clock routing on " << name << " ("
            << rb.spec.num_sinks << " modules, die " << rb.spec.die_side
            << " lambda, avg activity " << activity << ")\n\n";

  core::Design design{rb.die, rb.sinks, std::move(wl.rtl),
                      std::move(wl.stream), {}};
  const core::GatedClockRouter router(std::move(design));

  eval::Table t({"configuration", "W(T) pF", "W(S) pF", "W total", "vs buf",
                 "area 1e6", "gates", "red.%", "max delay", "skew"});
  double buffered_w = 0.0;
  const auto add = [&](const char* label, const core::RouterResult& r) {
    if (buffered_w == 0.0) buffered_w = r.swcap.total_swcap();
    t.add_row({label, eval::Table::num(r.swcap.clock_swcap, 1),
               eval::Table::num(r.swcap.ctrl_swcap, 1),
               eval::Table::num(r.swcap.total_swcap(), 1),
               eval::Table::num(r.swcap.total_swcap() / buffered_w, 3),
               eval::Table::num(r.swcap.total_area() / 1e6, 2),
               std::to_string(r.swcap.num_cells),
               eval::Table::num(r.gate_reduction_pct(), 1),
               eval::Table::num(r.delays.max_delay, 1),
               eval::Table::num(r.delays.skew(), 6)});
  };

  core::RouterOptions opts;
  opts.style = core::TreeStyle::Buffered;
  add("buffered (baseline)", router.route(opts));

  opts.style = core::TreeStyle::Gated;
  add("gated, every edge", router.route(opts));

  opts.style = core::TreeStyle::GatedReduced;
  opts.auto_tune_reduction = true;
  add("gated + reduction", router.route(opts));

  opts.controller_partitions = 4;
  add("  + 4 controllers", router.route(opts));
  opts.controller_partitions = 16;
  add("  + 16 controllers", router.route(opts));

  t.print(std::cout);
  std::cout << "\nReading the table: gating every edge loses to the buffered "
               "baseline because the\nstar-routed enables switch too much "
               "capacitance; the reduction heuristic keeps\nonly the gates "
               "that pay for themselves; distributing the controller "
               "shrinks the\nremaining enable wirelength by ~1/sqrt(k).\n";
  return 0;
}

/// \file activity_tables.cpp
/// Walk through the paper's section 3 example by hand: build the
/// instruction tables from a 20-cycle trace of a 4-instruction, 6-module
/// processor, then answer the probability queries the clock router needs --
/// showing both the brute-force stream rescan (section 3.2) and the
/// table-driven method (section 3.3) and that they agree.
///
/// Run:  ./activity_tables

#include <iostream>
#include <sstream>

#include "activity/analyzer.h"
#include "activity/brute_force.h"
#include "benchdata/paper_example.h"
#include "eval/table.h"
#include "io/text_io.h"

using namespace gcr;

int main() {
  const benchdata::PaperExample ex = benchdata::paper_example();

  std::cout << "Instruction stream (" << ex.stream.length() << " cycles):\n  ";
  for (const int i : ex.stream.seq) std::cout << 'I' << i + 1 << ' ';
  std::cout << "\n\nRTL description (which modules each instruction clocks):\n";
  io::write_rtl(std::cout, ex.rtl);

  const activity::ActivityAnalyzer an(ex.rtl, ex.stream);
  const activity::BruteForceActivity bf(ex.rtl, ex.stream);

  std::cout << "\nInstruction Frequency Table (one scan of the stream):\n";
  eval::Table ift({"instr", "P(I)"});
  for (int i = 0; i < 4; ++i)
    ift.add_row({"I" + std::to_string(i + 1),
                 eval::Table::num(an.ift().prob(i), 3)});
  ift.print(std::cout);

  std::cout << "\nPer-module activities P(M):\n";
  eval::Table pm({"module", "P(M) table-driven", "P(M) brute-force"});
  for (int m = 0; m < 6; ++m) {
    pm.add_row({"M" + std::to_string(m + 1),
                eval::Table::num(an.signal_prob(an.module_mask(m)), 3),
                eval::Table::num(bf.module_prob(m), 3)});
  }
  pm.print(std::cout);

  // A subtree whose leaves are M5 and M6 -- the paper's running example.
  activity::ModuleSet subtree(6);
  subtree.set(4);
  subtree.set(5);
  std::cout << "\nSubtree with leaf modules {M5, M6}:\n"
            << "  P(EN)    = " << an.signal_prob_of_modules(subtree)
            << "   (paper: 0.55)\n"
            << "  P_tr(EN) = " << an.transition_prob_of_modules(subtree)
            << "   (paper: 11 toggles / 19 pairs = 0.5789)\n"
            << "  brute-force cross-check: " << bf.signal_prob(subtree) << " / "
            << bf.transition_prob(subtree) << "\n";

  std::cout << "\nInterpretation: the gate feeding that subtree is enabled "
               "55% of cycles\n(saving 45% of its clock switching) and its "
               "enable wire toggles 0.58 times\nper cycle (the cost the "
               "controller tree pays).\n";
  return 0;
}

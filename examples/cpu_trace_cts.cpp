/// \file cpu_trace_cts.cpp
/// The full paper flow driven by *real* instruction-level simulation: the
/// toy RISC processor executes benchmark kernels, the ISA decode table and
/// the unit floorplan induce the RTL description, and the gated clock tree
/// is routed from the measured activity -- no probabilistic workload model
/// anywhere.
///
/// Run:  ./cpu_trace_cts [r1|r2|...]

#include <iostream>

#include "benchdata/rbench.h"
#include "core/router.h"
#include "cpu/bridge.h"
#include "eval/table.h"

using namespace gcr;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "r1";
  benchdata::RBench rb = benchdata::generate_rbench(name);

  // Floorplan the sinks into functional units and derive the RTL
  // description from the ISA decode table.
  const cpu::UnitFloorplan plan = cpu::assign_units(rb.sinks);
  activity::RtlDescription rtl = cpu::make_rtl(plan);
  activity::InstructionStream stream = cpu::multiprogram_stream(20000);

  std::cout << "CPU-trace-driven gated clock routing on " << name << " ("
            << rb.spec.num_sinks << " module instances, "
            << cpu::kNumUnits << " functional units, " << stream.length()
            << "-cycle multiprogram trace)\n\n";

  // Per-unit activity, measured from the trace.
  {
    const activity::ActivityAnalyzer an(rtl, stream);
    eval::Table t({"unit", "instances", "P(active)", "P_tr(enable)"});
    for (int u = 0; u < cpu::kNumUnits; ++u) {
      const auto& sinks = plan.unit_sinks[static_cast<std::size_t>(u)];
      activity::ModuleSet s(rtl.num_modules());
      for (const int m : sinks) s.set(m);
      t.add_row({std::string(cpu::unit_name(static_cast<cpu::Unit>(u))),
                 std::to_string(sinks.size()),
                 eval::Table::num(an.signal_prob_of_modules(s), 3),
                 eval::Table::num(an.transition_prob_of_modules(s), 3)});
    }
    t.print(std::cout);
  }

  core::Design design{rb.die, rb.sinks, std::move(rtl), std::move(stream),
                      {}};
  const core::GatedClockRouter router(std::move(design));

  std::cout << "\nRouting results:\n";
  eval::Table t({"configuration", "W(T)", "W(S)", "W total", "gates", "red.%",
                 "skew"});
  const auto add = [&](const char* label, const core::RouterOptions& opts) {
    const auto r = router.route(opts);
    t.add_row({label, eval::Table::num(r.swcap.clock_swcap, 1),
               eval::Table::num(r.swcap.ctrl_swcap, 1),
               eval::Table::num(r.swcap.total_swcap(), 1),
               std::to_string(r.swcap.num_cells),
               eval::Table::num(r.gate_reduction_pct(), 1),
               eval::Table::num(r.delays.skew(), 6)});
  };

  core::RouterOptions opts;
  opts.style = core::TreeStyle::Buffered;
  add("buffered", opts);
  opts.style = core::TreeStyle::Gated;
  add("gated (Eq.3 topo)", opts);
  opts.style = core::TreeStyle::GatedReduced;
  opts.auto_tune_reduction = true;
  add("gated+red (Eq.3 topo)", opts);
  opts.topology = core::TopologyScheme::NearestNeighbor;
  add("gated+red (NN topo)", opts);
  t.print(std::cout);

  std::cout
      << "\nTwo lessons from real traces: units like the divider idle "
         "through whole kernels\nand get gated off almost permanently, but "
         "cycle-granular enables toggle so often\n(P_tr up to ~0.5) that "
         "the controller-cost term dominates the paper's Eq. 3 merge\ncost "
         "and scrambles the geometry -- on such traces a nearest-neighbor "
         "topology with\nthe same gate-reduction flow is the better "
         "operating point.\n";
  return 0;
}

/// \file distributed_controller.cpp
/// Explores the paper's section 6 extension: replacing the centralized gate
/// controller with k distributed controllers. Sweeps k, compares the
/// measured star wirelength against the closed-form G*D/(4*sqrt(k)), and
/// shows the knock-on effect on total switched capacitance and on the
/// optimal gate-reduction operating point (cheaper enables justify keeping
/// more gates).
///
/// Run:  ./distributed_controller [r1|r2|...]

#include <cmath>
#include <iostream>

#include "benchdata/rbench.h"
#include "benchdata/workload.h"
#include "core/router.h"
#include "eval/table.h"

using namespace gcr;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "r1";
  benchdata::RBench rb = benchdata::generate_rbench(name);
  benchdata::WorkloadSpec wspec;
  wspec.num_instructions = 32;
  wspec.num_clusters = std::max(16, rb.spec.num_sinks / 32);
  wspec.target_activity = 0.4;
  wspec.locality = 0.85;
  wspec.stream_length = 20000;
  benchdata::Workload wl =
      benchdata::generate_workload(wspec, rb.sinks, rb.die);
  core::Design design{rb.die, rb.sinks, std::move(wl.rtl),
                      std::move(wl.stream), {}};
  const core::GatedClockRouter router(std::move(design));

  std::cout << "Distributed gate controllers on " << name << "\n\n";
  eval::Table t({"k", "star WL 1e3", "analytic 1e3", "W(S)", "W total",
                 "opt. red. %", "gates kept"});
  for (const int k : {1, 4, 16, 64}) {
    core::RouterOptions opts;
    opts.style = core::TreeStyle::GatedReduced;
    opts.controller_partitions = k;
    opts.auto_tune_reduction = true;
    const core::RouterResult r = router.route(opts);
    const gating::ControllerPlacement ctrl(rb.die, k);
    t.add_row({std::to_string(k),
               eval::Table::num(r.swcap.star_wirelength / 1e3, 0),
               eval::Table::num(
                   ctrl.analytic_total_star_length(r.swcap.num_cells) / 1e3, 0),
               eval::Table::num(r.swcap.ctrl_swcap, 1),
               eval::Table::num(r.swcap.total_swcap(), 1),
               eval::Table::num(r.gate_reduction_pct(), 1),
               std::to_string(r.swcap.num_cells)});
  }
  t.print(std::cout);
  std::cout << "\nAs enables get cheaper (larger k), the auto-tuned optimum "
               "keeps more gates\nand the total switched capacitance drops "
               "further below the centralized case.\n";
  return 0;
}

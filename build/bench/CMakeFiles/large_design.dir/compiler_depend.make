# Empty compiler generated dependencies file for large_design.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/large_design.dir/large_design.cpp.o"
  "CMakeFiles/large_design.dir/large_design.cpp.o.d"
  "large_design"
  "large_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

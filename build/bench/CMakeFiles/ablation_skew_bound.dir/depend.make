# Empty dependencies file for ablation_skew_bound.
# This may be replaced when dependencies are built.

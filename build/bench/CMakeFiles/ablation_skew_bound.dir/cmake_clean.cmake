file(REMOVE_RECURSE
  "CMakeFiles/ablation_skew_bound.dir/ablation_skew_bound.cpp.o"
  "CMakeFiles/ablation_skew_bound.dir/ablation_skew_bound.cpp.o.d"
  "ablation_skew_bound"
  "ablation_skew_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_skew_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

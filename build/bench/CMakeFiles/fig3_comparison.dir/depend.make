# Empty dependencies file for fig3_comparison.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig3_comparison.dir/fig3_comparison.cpp.o"
  "CMakeFiles/fig3_comparison.dir/fig3_comparison.cpp.o.d"
  "fig3_comparison"
  "fig3_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

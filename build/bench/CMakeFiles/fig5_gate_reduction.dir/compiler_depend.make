# Empty compiler generated dependencies file for fig5_gate_reduction.
# This may be replaced when dependencies are built.

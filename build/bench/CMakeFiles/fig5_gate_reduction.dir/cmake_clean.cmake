file(REMOVE_RECURSE
  "CMakeFiles/fig5_gate_reduction.dir/fig5_gate_reduction.cpp.o"
  "CMakeFiles/fig5_gate_reduction.dir/fig5_gate_reduction.cpp.o.d"
  "fig5_gate_reduction"
  "fig5_gate_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gate_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

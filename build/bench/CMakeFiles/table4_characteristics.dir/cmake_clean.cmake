file(REMOVE_RECURSE
  "CMakeFiles/table4_characteristics.dir/table4_characteristics.cpp.o"
  "CMakeFiles/table4_characteristics.dir/table4_characteristics.cpp.o.d"
  "table4_characteristics"
  "table4_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

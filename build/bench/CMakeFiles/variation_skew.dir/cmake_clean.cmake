file(REMOVE_RECURSE
  "CMakeFiles/variation_skew.dir/variation_skew.cpp.o"
  "CMakeFiles/variation_skew.dir/variation_skew.cpp.o.d"
  "variation_skew"
  "variation_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variation_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

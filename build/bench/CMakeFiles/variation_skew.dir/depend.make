# Empty dependencies file for variation_skew.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for workload_robustness.
# This may be replaced when dependencies are built.

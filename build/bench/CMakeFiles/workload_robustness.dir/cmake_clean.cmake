file(REMOVE_RECURSE
  "CMakeFiles/workload_robustness.dir/workload_robustness.cpp.o"
  "CMakeFiles/workload_robustness.dir/workload_robustness.cpp.o.d"
  "workload_robustness"
  "workload_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/controller_logic_cost.dir/controller_logic_cost.cpp.o"
  "CMakeFiles/controller_logic_cost.dir/controller_logic_cost.cpp.o.d"
  "controller_logic_cost"
  "controller_logic_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_logic_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

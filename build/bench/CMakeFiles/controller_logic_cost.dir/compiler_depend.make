# Empty compiler generated dependencies file for controller_logic_cost.
# This may be replaced when dependencies are built.

# Empty dependencies file for table123_activity_example.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table123_activity_example.dir/table123_activity_example.cpp.o"
  "CMakeFiles/table123_activity_example.dir/table123_activity_example.cpp.o.d"
  "table123_activity_example"
  "table123_activity_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table123_activity_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig6_distributed.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig6_distributed.dir/fig6_distributed.cpp.o"
  "CMakeFiles/fig6_distributed.dir/fig6_distributed.cpp.o.d"
  "fig6_distributed"
  "fig6_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

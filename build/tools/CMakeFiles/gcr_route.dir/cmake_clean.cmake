file(REMOVE_RECURSE
  "CMakeFiles/gcr_route.dir/gcr_route.cpp.o"
  "CMakeFiles/gcr_route.dir/gcr_route.cpp.o.d"
  "gcr_route"
  "gcr_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcr_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

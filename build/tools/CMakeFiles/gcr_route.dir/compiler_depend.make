# Empty compiler generated dependencies file for gcr_route.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/activity_tables.dir/activity_tables.cpp.o"
  "CMakeFiles/activity_tables.dir/activity_tables.cpp.o.d"
  "activity_tables"
  "activity_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for activity_tables.
# This may be replaced when dependencies are built.

# Empty dependencies file for microprocessor_cts.
# This may be replaced when dependencies are built.

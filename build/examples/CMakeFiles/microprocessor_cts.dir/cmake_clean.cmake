file(REMOVE_RECURSE
  "CMakeFiles/microprocessor_cts.dir/microprocessor_cts.cpp.o"
  "CMakeFiles/microprocessor_cts.dir/microprocessor_cts.cpp.o.d"
  "microprocessor_cts"
  "microprocessor_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microprocessor_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/distributed_controller.dir/distributed_controller.cpp.o"
  "CMakeFiles/distributed_controller.dir/distributed_controller.cpp.o.d"
  "distributed_controller"
  "distributed_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

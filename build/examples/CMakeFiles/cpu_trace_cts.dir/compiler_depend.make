# Empty compiler generated dependencies file for cpu_trace_cts.
# This may be replaced when dependencies are built.

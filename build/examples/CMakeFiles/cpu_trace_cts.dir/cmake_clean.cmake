file(REMOVE_RECURSE
  "CMakeFiles/cpu_trace_cts.dir/cpu_trace_cts.cpp.o"
  "CMakeFiles/cpu_trace_cts.dir/cpu_trace_cts.cpp.o.d"
  "cpu_trace_cts"
  "cpu_trace_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_trace_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gating/controller.cpp" "src/gating/CMakeFiles/gcr_gating.dir/controller.cpp.o" "gcc" "src/gating/CMakeFiles/gcr_gating.dir/controller.cpp.o.d"
  "/root/repo/src/gating/controller_logic.cpp" "src/gating/CMakeFiles/gcr_gating.dir/controller_logic.cpp.o" "gcc" "src/gating/CMakeFiles/gcr_gating.dir/controller_logic.cpp.o.d"
  "/root/repo/src/gating/gate_reduction.cpp" "src/gating/CMakeFiles/gcr_gating.dir/gate_reduction.cpp.o" "gcc" "src/gating/CMakeFiles/gcr_gating.dir/gate_reduction.cpp.o.d"
  "/root/repo/src/gating/swcap.cpp" "src/gating/CMakeFiles/gcr_gating.dir/swcap.cpp.o" "gcc" "src/gating/CMakeFiles/gcr_gating.dir/swcap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/gcr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/activity/CMakeFiles/gcr_activity.dir/DependInfo.cmake"
  "/root/repo/build/src/clocktree/CMakeFiles/gcr_clocktree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

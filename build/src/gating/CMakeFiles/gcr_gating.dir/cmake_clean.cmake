file(REMOVE_RECURSE
  "CMakeFiles/gcr_gating.dir/controller.cpp.o"
  "CMakeFiles/gcr_gating.dir/controller.cpp.o.d"
  "CMakeFiles/gcr_gating.dir/controller_logic.cpp.o"
  "CMakeFiles/gcr_gating.dir/controller_logic.cpp.o.d"
  "CMakeFiles/gcr_gating.dir/gate_reduction.cpp.o"
  "CMakeFiles/gcr_gating.dir/gate_reduction.cpp.o.d"
  "CMakeFiles/gcr_gating.dir/swcap.cpp.o"
  "CMakeFiles/gcr_gating.dir/swcap.cpp.o.d"
  "libgcr_gating.a"
  "libgcr_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcr_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

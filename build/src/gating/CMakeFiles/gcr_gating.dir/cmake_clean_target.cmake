file(REMOVE_RECURSE
  "libgcr_gating.a"
)

# Empty dependencies file for gcr_gating.
# This may be replaced when dependencies are built.

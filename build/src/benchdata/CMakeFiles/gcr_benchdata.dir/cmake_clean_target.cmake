file(REMOVE_RECURSE
  "libgcr_benchdata.a"
)

# Empty dependencies file for gcr_benchdata.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchdata/paper_example.cpp" "src/benchdata/CMakeFiles/gcr_benchdata.dir/paper_example.cpp.o" "gcc" "src/benchdata/CMakeFiles/gcr_benchdata.dir/paper_example.cpp.o.d"
  "/root/repo/src/benchdata/rbench.cpp" "src/benchdata/CMakeFiles/gcr_benchdata.dir/rbench.cpp.o" "gcc" "src/benchdata/CMakeFiles/gcr_benchdata.dir/rbench.cpp.o.d"
  "/root/repo/src/benchdata/workload.cpp" "src/benchdata/CMakeFiles/gcr_benchdata.dir/workload.cpp.o" "gcc" "src/benchdata/CMakeFiles/gcr_benchdata.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/gcr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/activity/CMakeFiles/gcr_activity.dir/DependInfo.cmake"
  "/root/repo/build/src/clocktree/CMakeFiles/gcr_clocktree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/gcr_benchdata.dir/paper_example.cpp.o"
  "CMakeFiles/gcr_benchdata.dir/paper_example.cpp.o.d"
  "CMakeFiles/gcr_benchdata.dir/rbench.cpp.o"
  "CMakeFiles/gcr_benchdata.dir/rbench.cpp.o.d"
  "CMakeFiles/gcr_benchdata.dir/workload.cpp.o"
  "CMakeFiles/gcr_benchdata.dir/workload.cpp.o.d"
  "libgcr_benchdata.a"
  "libgcr_benchdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcr_benchdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

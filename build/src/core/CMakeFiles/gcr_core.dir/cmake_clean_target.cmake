file(REMOVE_RECURSE
  "libgcr_core.a"
)

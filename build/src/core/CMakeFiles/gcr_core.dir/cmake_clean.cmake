file(REMOVE_RECURSE
  "CMakeFiles/gcr_core.dir/router.cpp.o"
  "CMakeFiles/gcr_core.dir/router.cpp.o.d"
  "libgcr_core.a"
  "libgcr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gcr_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgcr_clocktree.a"
)

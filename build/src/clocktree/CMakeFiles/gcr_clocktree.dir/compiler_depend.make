# Empty compiler generated dependencies file for gcr_clocktree.
# This may be replaced when dependencies are built.

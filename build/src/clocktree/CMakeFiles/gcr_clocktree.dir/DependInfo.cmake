
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clocktree/bounded.cpp" "src/clocktree/CMakeFiles/gcr_clocktree.dir/bounded.cpp.o" "gcc" "src/clocktree/CMakeFiles/gcr_clocktree.dir/bounded.cpp.o.d"
  "/root/repo/src/clocktree/elmore.cpp" "src/clocktree/CMakeFiles/gcr_clocktree.dir/elmore.cpp.o" "gcc" "src/clocktree/CMakeFiles/gcr_clocktree.dir/elmore.cpp.o.d"
  "/root/repo/src/clocktree/embed.cpp" "src/clocktree/CMakeFiles/gcr_clocktree.dir/embed.cpp.o" "gcc" "src/clocktree/CMakeFiles/gcr_clocktree.dir/embed.cpp.o.d"
  "/root/repo/src/clocktree/topology.cpp" "src/clocktree/CMakeFiles/gcr_clocktree.dir/topology.cpp.o" "gcc" "src/clocktree/CMakeFiles/gcr_clocktree.dir/topology.cpp.o.d"
  "/root/repo/src/clocktree/zskew.cpp" "src/clocktree/CMakeFiles/gcr_clocktree.dir/zskew.cpp.o" "gcc" "src/clocktree/CMakeFiles/gcr_clocktree.dir/zskew.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/gcr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

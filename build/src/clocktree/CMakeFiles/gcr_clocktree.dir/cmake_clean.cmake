file(REMOVE_RECURSE
  "CMakeFiles/gcr_clocktree.dir/bounded.cpp.o"
  "CMakeFiles/gcr_clocktree.dir/bounded.cpp.o.d"
  "CMakeFiles/gcr_clocktree.dir/elmore.cpp.o"
  "CMakeFiles/gcr_clocktree.dir/elmore.cpp.o.d"
  "CMakeFiles/gcr_clocktree.dir/embed.cpp.o"
  "CMakeFiles/gcr_clocktree.dir/embed.cpp.o.d"
  "CMakeFiles/gcr_clocktree.dir/topology.cpp.o"
  "CMakeFiles/gcr_clocktree.dir/topology.cpp.o.d"
  "CMakeFiles/gcr_clocktree.dir/zskew.cpp.o"
  "CMakeFiles/gcr_clocktree.dir/zskew.cpp.o.d"
  "libgcr_clocktree.a"
  "libgcr_clocktree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcr_clocktree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

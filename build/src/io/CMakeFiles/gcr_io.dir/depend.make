# Empty dependencies file for gcr_io.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gcr_io.dir/svg.cpp.o"
  "CMakeFiles/gcr_io.dir/svg.cpp.o.d"
  "CMakeFiles/gcr_io.dir/text_io.cpp.o"
  "CMakeFiles/gcr_io.dir/text_io.cpp.o.d"
  "CMakeFiles/gcr_io.dir/tree_io.cpp.o"
  "CMakeFiles/gcr_io.dir/tree_io.cpp.o.d"
  "libgcr_io.a"
  "libgcr_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcr_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgcr_io.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/svg.cpp" "src/io/CMakeFiles/gcr_io.dir/svg.cpp.o" "gcc" "src/io/CMakeFiles/gcr_io.dir/svg.cpp.o.d"
  "/root/repo/src/io/text_io.cpp" "src/io/CMakeFiles/gcr_io.dir/text_io.cpp.o" "gcc" "src/io/CMakeFiles/gcr_io.dir/text_io.cpp.o.d"
  "/root/repo/src/io/tree_io.cpp" "src/io/CMakeFiles/gcr_io.dir/tree_io.cpp.o" "gcc" "src/io/CMakeFiles/gcr_io.dir/tree_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/gcr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/activity/CMakeFiles/gcr_activity.dir/DependInfo.cmake"
  "/root/repo/build/src/clocktree/CMakeFiles/gcr_clocktree.dir/DependInfo.cmake"
  "/root/repo/build/src/gating/CMakeFiles/gcr_gating.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

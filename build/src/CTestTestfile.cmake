# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("geom")
subdirs("tech")
subdirs("activity")
subdirs("cpu")
subdirs("clocktree")
subdirs("gating")
subdirs("cts")
subdirs("core")
subdirs("benchdata")
subdirs("eval")
subdirs("io")

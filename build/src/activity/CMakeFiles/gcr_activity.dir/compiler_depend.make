# Empty compiler generated dependencies file for gcr_activity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gcr_activity.dir/analyzer.cpp.o"
  "CMakeFiles/gcr_activity.dir/analyzer.cpp.o.d"
  "CMakeFiles/gcr_activity.dir/brute_force.cpp.o"
  "CMakeFiles/gcr_activity.dir/brute_force.cpp.o.d"
  "CMakeFiles/gcr_activity.dir/ift.cpp.o"
  "CMakeFiles/gcr_activity.dir/ift.cpp.o.d"
  "CMakeFiles/gcr_activity.dir/imatt.cpp.o"
  "CMakeFiles/gcr_activity.dir/imatt.cpp.o.d"
  "libgcr_activity.a"
  "libgcr_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcr_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

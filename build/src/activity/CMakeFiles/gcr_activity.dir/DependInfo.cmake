
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/activity/analyzer.cpp" "src/activity/CMakeFiles/gcr_activity.dir/analyzer.cpp.o" "gcc" "src/activity/CMakeFiles/gcr_activity.dir/analyzer.cpp.o.d"
  "/root/repo/src/activity/brute_force.cpp" "src/activity/CMakeFiles/gcr_activity.dir/brute_force.cpp.o" "gcc" "src/activity/CMakeFiles/gcr_activity.dir/brute_force.cpp.o.d"
  "/root/repo/src/activity/ift.cpp" "src/activity/CMakeFiles/gcr_activity.dir/ift.cpp.o" "gcc" "src/activity/CMakeFiles/gcr_activity.dir/ift.cpp.o.d"
  "/root/repo/src/activity/imatt.cpp" "src/activity/CMakeFiles/gcr_activity.dir/imatt.cpp.o" "gcc" "src/activity/CMakeFiles/gcr_activity.dir/imatt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

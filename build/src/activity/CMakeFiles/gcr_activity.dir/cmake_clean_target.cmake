file(REMOVE_RECURSE
  "libgcr_activity.a"
)

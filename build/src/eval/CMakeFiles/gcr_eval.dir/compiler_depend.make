# Empty compiler generated dependencies file for gcr_eval.
# This may be replaced when dependencies are built.

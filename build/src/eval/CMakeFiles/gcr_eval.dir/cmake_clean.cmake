file(REMOVE_RECURSE
  "CMakeFiles/gcr_eval.dir/simulate.cpp.o"
  "CMakeFiles/gcr_eval.dir/simulate.cpp.o.d"
  "CMakeFiles/gcr_eval.dir/table.cpp.o"
  "CMakeFiles/gcr_eval.dir/table.cpp.o.d"
  "CMakeFiles/gcr_eval.dir/variation.cpp.o"
  "CMakeFiles/gcr_eval.dir/variation.cpp.o.d"
  "libgcr_eval.a"
  "libgcr_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcr_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

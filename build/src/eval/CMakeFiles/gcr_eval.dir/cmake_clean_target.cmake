file(REMOVE_RECURSE
  "libgcr_eval.a"
)

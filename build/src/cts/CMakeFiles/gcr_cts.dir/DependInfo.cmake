
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cts/clustered.cpp" "src/cts/CMakeFiles/gcr_cts.dir/clustered.cpp.o" "gcc" "src/cts/CMakeFiles/gcr_cts.dir/clustered.cpp.o.d"
  "/root/repo/src/cts/greedy.cpp" "src/cts/CMakeFiles/gcr_cts.dir/greedy.cpp.o" "gcc" "src/cts/CMakeFiles/gcr_cts.dir/greedy.cpp.o.d"
  "/root/repo/src/cts/mmm.cpp" "src/cts/CMakeFiles/gcr_cts.dir/mmm.cpp.o" "gcc" "src/cts/CMakeFiles/gcr_cts.dir/mmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/gcr_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/activity/CMakeFiles/gcr_activity.dir/DependInfo.cmake"
  "/root/repo/build/src/clocktree/CMakeFiles/gcr_clocktree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for gcr_cts.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgcr_cts.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/gcr_cts.dir/clustered.cpp.o"
  "CMakeFiles/gcr_cts.dir/clustered.cpp.o.d"
  "CMakeFiles/gcr_cts.dir/greedy.cpp.o"
  "CMakeFiles/gcr_cts.dir/greedy.cpp.o.d"
  "CMakeFiles/gcr_cts.dir/mmm.cpp.o"
  "CMakeFiles/gcr_cts.dir/mmm.cpp.o.d"
  "libgcr_cts.a"
  "libgcr_cts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcr_cts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

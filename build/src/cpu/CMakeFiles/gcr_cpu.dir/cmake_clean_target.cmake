file(REMOVE_RECURSE
  "libgcr_cpu.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/gcr_cpu.dir/bridge.cpp.o"
  "CMakeFiles/gcr_cpu.dir/bridge.cpp.o.d"
  "CMakeFiles/gcr_cpu.dir/isa.cpp.o"
  "CMakeFiles/gcr_cpu.dir/isa.cpp.o.d"
  "CMakeFiles/gcr_cpu.dir/machine.cpp.o"
  "CMakeFiles/gcr_cpu.dir/machine.cpp.o.d"
  "CMakeFiles/gcr_cpu.dir/program.cpp.o"
  "CMakeFiles/gcr_cpu.dir/program.cpp.o.d"
  "libgcr_cpu.a"
  "libgcr_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcr_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

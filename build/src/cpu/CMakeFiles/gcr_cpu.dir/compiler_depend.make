# Empty compiler generated dependencies file for gcr_cpu.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gcr_geom.dir/point.cpp.o"
  "CMakeFiles/gcr_geom.dir/point.cpp.o.d"
  "CMakeFiles/gcr_geom.dir/tilted_rect.cpp.o"
  "CMakeFiles/gcr_geom.dir/tilted_rect.cpp.o.d"
  "libgcr_geom.a"
  "libgcr_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcr_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgcr_geom.a"
)

# Empty compiler generated dependencies file for gcr_geom.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/activity_test.cpp" "tests/CMakeFiles/activity_test.dir/activity_test.cpp.o" "gcc" "tests/CMakeFiles/activity_test.dir/activity_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gcr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/benchdata/CMakeFiles/gcr_benchdata.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/gcr_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/gcr_io.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/gcr_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cts/CMakeFiles/gcr_cts.dir/DependInfo.cmake"
  "/root/repo/build/src/gating/CMakeFiles/gcr_gating.dir/DependInfo.cmake"
  "/root/repo/build/src/activity/CMakeFiles/gcr_activity.dir/DependInfo.cmake"
  "/root/repo/build/src/clocktree/CMakeFiles/gcr_clocktree.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/gcr_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

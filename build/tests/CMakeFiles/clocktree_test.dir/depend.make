# Empty dependencies file for clocktree_test.
# This may be replaced when dependencies are built.

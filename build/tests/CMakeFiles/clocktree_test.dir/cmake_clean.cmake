file(REMOVE_RECURSE
  "CMakeFiles/clocktree_test.dir/clocktree_test.cpp.o"
  "CMakeFiles/clocktree_test.dir/clocktree_test.cpp.o.d"
  "clocktree_test"
  "clocktree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clocktree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for clocktree_property_test.

file(REMOVE_RECURSE
  "CMakeFiles/clocktree_property_test.dir/clocktree_property_test.cpp.o"
  "CMakeFiles/clocktree_property_test.dir/clocktree_property_test.cpp.o.d"
  "clocktree_property_test"
  "clocktree_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clocktree_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/controller_logic_test.dir/controller_logic_test.cpp.o"
  "CMakeFiles/controller_logic_test.dir/controller_logic_test.cpp.o.d"
  "controller_logic_test"
  "controller_logic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_logic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bounded_test.dir/bounded_test.cpp.o"
  "CMakeFiles/bounded_test.dir/bounded_test.cpp.o.d"
  "bounded_test"
  "bounded_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/zskew_fuzz_test.dir/zskew_fuzz_test.cpp.o"
  "CMakeFiles/zskew_fuzz_test.dir/zskew_fuzz_test.cpp.o.d"
  "zskew_fuzz_test"
  "zskew_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zskew_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for zskew_fuzz_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mmm_test.dir/mmm_test.cpp.o"
  "CMakeFiles/mmm_test.dir/mmm_test.cpp.o.d"
  "mmm_test"
  "mmm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

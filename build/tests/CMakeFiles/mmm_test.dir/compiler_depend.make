# Empty compiler generated dependencies file for mmm_test.
# This may be replaced when dependencies are built.

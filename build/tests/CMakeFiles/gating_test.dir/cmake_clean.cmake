file(REMOVE_RECURSE
  "CMakeFiles/gating_test.dir/gating_test.cpp.o"
  "CMakeFiles/gating_test.dir/gating_test.cpp.o.d"
  "gating_test"
  "gating_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gating_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

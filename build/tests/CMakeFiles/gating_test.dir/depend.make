# Empty dependencies file for gating_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for benchdata_test.
# This may be replaced when dependencies are built.

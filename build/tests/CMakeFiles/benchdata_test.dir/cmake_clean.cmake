file(REMOVE_RECURSE
  "CMakeFiles/benchdata_test.dir/benchdata_test.cpp.o"
  "CMakeFiles/benchdata_test.dir/benchdata_test.cpp.o.d"
  "benchdata_test"
  "benchdata_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchdata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/geom_fuzz_test.dir/geom_fuzz_test.cpp.o"
  "CMakeFiles/geom_fuzz_test.dir/geom_fuzz_test.cpp.o.d"
  "geom_fuzz_test"
  "geom_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

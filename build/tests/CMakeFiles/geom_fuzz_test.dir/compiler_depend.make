# Empty compiler generated dependencies file for geom_fuzz_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for router_topology_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/router_topology_test.dir/router_topology_test.cpp.o"
  "CMakeFiles/router_topology_test.dir/router_topology_test.cpp.o.d"
  "router_topology_test"
  "router_topology_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

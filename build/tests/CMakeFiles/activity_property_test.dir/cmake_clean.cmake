file(REMOVE_RECURSE
  "CMakeFiles/activity_property_test.dir/activity_property_test.cpp.o"
  "CMakeFiles/activity_property_test.dir/activity_property_test.cpp.o.d"
  "activity_property_test"
  "activity_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tree_io_test.dir/tree_io_test.cpp.o"
  "CMakeFiles/tree_io_test.dir/tree_io_test.cpp.o.d"
  "tree_io_test"
  "tree_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
